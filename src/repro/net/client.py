"""``NetStoreClient``: the full ``GraphStore`` protocol over real sockets.

This is :class:`~repro.store.remote.RemoteStoreClient` with the simulation
removed: the fetch boundary is identical — whole vertex records cross it,
every read is computed worker-side from the fetched copy, writes
invalidate the touched copies — but the fetch is an actual RPC to a
:class:`~repro.net.server.StoreServer` instead of an in-process method
call.  Because engines, GC, and checkpointing only ever see the
:class:`~repro.store.api.GraphStore` protocol, mining output over this
client is byte-identical to the in-process stores (the acceptance
invariant of the networking PR).

Accounting runs double-entry:

* :attr:`log` is the same :class:`~repro.store.remote.FetchLog`, charged
  by the same rules as the simulated client (one fetch per first record
  touch, ``max(entries, 1)`` bytes-proxy, modeled latency) so cost
  analyses and ``repro_store_*`` gauges stay comparable across clients;
* :attr:`net_log` is the wire truth (RPC count, retries, deadline hits,
  real bytes on the socket) from the underlying RPC client, surfaced as
  ``repro_net_*`` gauges.

Construction has two modes.  With an ``address`` the client connects to
an already-running server (``repro serve-store``).  Without one it spawns
an **embedded loopback server** over a fresh in-process store — that is
what ``make_store("net")`` uses, so ``mine --store net`` works standalone
while still pushing every record over a real TCP socket.

The client survives pickling (the process backend ships the store to
workers): sockets and the embedded server stay behind, and the unpickled
copy redials the same address with a fresh session.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.net.frames import FLAG_BINARY, FLAG_PIPELINE
from repro.net.rpc import DEFAULT_DEADLINE, NetLog, RetryPolicy, RpcClient
from repro.net.server import MAX_BATCH, StoreServer
from repro.net.wire import (
    RecordsPayload,
    decode_record,
    decode_reclaim_stats,
    decode_timestamp,
    decode_updated_keys,
    encode_binary_payload,
    encode_edge_update,
    encode_payload,
    encode_record,
    split_address,
)
from repro.store.api import GraphStore, ReclaimStats
from repro.store.mvstore import MultiVersionStore, VertexRecord
from repro.store.remote import FetchCosts, FetchLog
from repro.store.shard import AccessStats, ShardMap
from repro.telemetry import Telemetry, ensure
from repro.types import EdgeKey, EdgeUpdate, Label, Timestamp, VertexId

#: default records per multi_get RPC when scanning (iter_records, prefetch);
#: override per client with ``NetStoreClient(batch_size=...)`` or end to end
#: with ``mine --store-batch``
BATCH_SIZE = 256

#: multi_get chunks kept in flight ahead of decoding (fetch-ahead)
FETCH_AHEAD = 4

Address = Union[str, Tuple[str, int]]


class NetStoreClient(GraphStore):
    """Worker-side store client speaking framed RPC over TCP.

    The cache is soft state exactly as in the simulated client: it can be
    dropped at any time (worker restart, reclaim) without correctness
    impact, because every entry is a private deep copy of a server record.
    """

    kind = "net"

    def __init__(
        self,
        address: Optional[Address] = None,
        *,
        costs: FetchCosts = FetchCosts(),
        cache_capacity: Optional[int] = None,
        deadline: float = DEFAULT_DEADLINE,
        retry: Optional[RetryPolicy] = None,
        pool_size: int = 2,
        batch_size: int = BATCH_SIZE,
        num_shards: int = 8,
        graph=None,
        ts: Timestamp = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.costs = costs
        self.cache_capacity = cache_capacity
        self.batch_size = batch_size
        self.log = FetchLog()
        self.telemetry = ensure(telemetry)
        self._lock = threading.Lock()
        self._cache: Dict[VertexId, VertexRecord] = {}
        self._updated_memo: Optional[Tuple[Timestamp, Dict[EdgeKey, bool]]] = None
        self._server: Optional[StoreServer] = None
        load_graph = None
        if address is None:
            inner = (
                MultiVersionStore.from_adjacency(graph, ts=ts, num_shards=num_shards)
                if graph is not None
                else MultiVersionStore(num_shards=num_shards)
            )
            # the embedded loopback server shares this process's telemetry,
            # so its server spans land in the same trace file as the client's
            self._server = StoreServer(inner, telemetry=telemetry).start()
            host, port = self._server.address
        else:
            host, port = (
                split_address(address) if isinstance(address, str) else address
            )
            load_graph = graph  # external server: bulk-load over the wire
        self._rpc = RpcClient(
            host,
            port,
            deadline=deadline,
            retry=retry,
            pool_size=pool_size,
            telemetry=telemetry,
        )
        hello = self._rpc.call("hello", {})
        self._session: int = hello["session"]
        self.server_features: Tuple[str, ...] = tuple(hello.get("features") or ())
        # both fast paths are feature-gated: a JSON-only (or blocking-only)
        # server never sees a flagged frame or a binary payload from us
        self._binary = "bin" in self.server_features
        self._pipeline = "pipe" in self.server_features
        self._server_max_batch = int(hello.get("max_batch") or MAX_BATCH)
        self._seq = 0
        self._latest: Timestamp = decode_timestamp(hello["latest_ts"])
        self.shards = ShardMap(hello["num_shards"])
        self.access_stats = AccessStats(num_shards=hello["num_shards"])
        if load_graph is not None:
            self._bulk_load(load_graph, ts)

    def _bulk_load(self, graph, ts: Timestamp) -> None:
        """Push an initial snapshot to an external server, record by record."""
        staged = MultiVersionStore.from_adjacency(
            graph, ts=ts, num_shards=self.shards.num_shards
        )
        for v, record in staged.iter_records():
            self.put_record(v, record)
        self.set_latest_timestamp(max(ts, self._latest))

    # -- wire accounting ---------------------------------------------------

    @property
    def net_log(self) -> NetLog:
        """Wire-level truth: RPCs, retries, deadline hits, real bytes."""
        return self._rpc.log

    def take_net_delta(self) -> NetLog:
        """Wire activity since the last take (see
        :meth:`~repro.net.rpc.RpcClient.take_log_delta`).

        This is what a process worker ships back per task: deltas
        partition the reconnected client's activity, so the parent can
        accumulate them without resetting or double-counting.
        """
        return self._rpc.take_log_delta()

    @property
    def address(self) -> Tuple[str, int]:
        return (self._rpc.host, self._rpc.port)

    # -- the fetch boundary ------------------------------------------------

    def _fetch(self, v: VertexId) -> VertexRecord:
        """First touch fetches the whole record over the wire and caches it.

        Charging mirrors :meth:`RemoteStoreClient._fetch` field for field,
        which is what keeps the two clients' ``FetchLog`` reconcilable.
        """
        cached = self._cache.get(v)
        if cached is not None:
            return cached
        reply = self._rpc.call("get_record", {"v": v}, binary=self._binary)
        record = self._record_from(v, reply)
        if record is None:
            record = VertexRecord()  # missing vertex reads as empty
        self._charge_fetch(v, record)
        if (
            self.cache_capacity is not None
            and len(self._cache) >= self.cache_capacity
        ):
            self._cache.pop(next(iter(self._cache)))  # FIFO eviction
        self._cache[v] = record
        return record

    def _charge_fetch(self, v: VertexId, record: VertexRecord) -> None:
        entries = sum(map(len, record.edges.values()))
        self.log.fetches += 1
        self.log.records_bytes_proxy += max(entries, 1)
        self.log.simulated_seconds += (
            self.costs.round_trip + entries * self.costs.per_edge
        )
        shard = self.shards.shard_of(v)
        self.log.per_shard[shard] = self.log.per_shard.get(shard, 0) + 1

    @staticmethod
    def _record_from(v: VertexId, reply: Any) -> Optional[VertexRecord]:
        """A single-record reply in either wire form (binary map or JSON)."""
        if isinstance(reply, RecordsPayload):
            return reply.records.get(v)
        return decode_record(reply)

    @staticmethod
    def _chunk_records(
        chunk: List[VertexId], reply: Any
    ) -> Iterator[Tuple[VertexId, Optional[VertexRecord]]]:
        """``(v, record)`` pairs of one multi_get reply, in request order."""
        if isinstance(reply, RecordsPayload):
            for v in chunk:
                yield v, reply.records.get(v)
        else:
            for v in chunk:
                yield v, decode_record(reply.get(str(v)))

    def _multi_get_stream(
        self, chunks: List[List[VertexId]]
    ) -> Iterator[Tuple[List[VertexId], Any]]:
        """Yield ``(chunk, reply)`` per multi_get, fetch-ahead pipelined.

        Against a pipelining server, up to :data:`FETCH_AHEAD` chunk
        requests stay in flight while the caller decodes the current
        reply — the next batch crosses the wire during decode instead of
        after it.  Replies are consumed strictly in submission order, so
        cache-fill order and :class:`FetchLog` charging are exactly those
        of the blocking loop; against an old server this *is* the
        blocking loop.
        """
        if not self._pipeline:
            for chunk in chunks:
                yield chunk, self._rpc.call(
                    "multi_get", {"vs": chunk}, binary=self._binary
                )
            return
        pending = deque()
        remaining = iter(chunks)
        for chunk in remaining:
            pending.append(
                (
                    chunk,
                    self._rpc.submit(
                        "multi_get",
                        {"vs": chunk},
                        binary=self._binary,
                        flags=FLAG_PIPELINE,
                    ),
                )
            )
            if len(pending) >= FETCH_AHEAD:
                break
        while pending:
            chunk, future = pending.popleft()
            reply = future.result()
            upcoming = next(remaining, None)
            if upcoming is not None:
                pending.append(
                    (
                        upcoming,
                        self._rpc.submit(
                            "multi_get",
                            {"vs": upcoming},
                            binary=self._binary,
                            flags=FLAG_PIPELINE,
                        ),
                    )
                )
            yield chunk, reply

    def prefetch(self, vertices: List[VertexId]) -> int:
        """Batch-fetch records not yet cached; returns how many shipped.

        One ``multi_get`` RPC per :attr:`batch_size` records, issued
        fetch-ahead (see :meth:`_multi_get_stream`).  Each record is
        charged to the :class:`FetchLog` as a fetch, but a batch shares
        one modeled round-trip — the batching discount the benchmark
        measures against per-record fetching; the charging per chunk is
        identical whether the chunks were pipelined or blocking.
        """
        missing = [v for v in vertices if v not in self._cache]
        shipped = 0
        chunks = [
            missing[i : i + self.batch_size]
            for i in range(0, len(missing), self.batch_size)
        ]
        for chunk, reply in self._multi_get_stream(chunks):
            batch_entries = 0
            for v, record in self._chunk_records(chunk, reply):
                if record is None:
                    record = VertexRecord()
                self.log.fetches += 1
                entries = sum(map(len, record.edges.values()))
                self.log.records_bytes_proxy += max(entries, 1)
                batch_entries += entries
                shard = self.shards.shard_of(v)
                self.log.per_shard[shard] = self.log.per_shard.get(shard, 0) + 1
                self._cache[v] = record
                shipped += 1
            self.log.simulated_seconds += (
                self.costs.round_trip + batch_entries * self.costs.per_edge
            )
        return shipped

    def drop_cache(self) -> None:
        """Simulate a worker restart: soft state vanishes."""
        self._cache.clear()

    def _invalidate(self, *vertices: VertexId) -> None:
        for v in vertices:
            self._cache.pop(v, None)

    # -- write path (RPCs tagged for exactly-once retries) -----------------

    def _write(self, op: str, args: dict, encoder=None) -> None:
        with self._lock:
            self._seq += 1
            seq = self._seq
        result = self._rpc.call(
            op, args, session=self._session, seq=seq, encoder=encoder
        )
        with self._lock:
            self._latest = max(self._latest, decode_timestamp(result["latest_ts"]))
            self._updated_memo = None

    @staticmethod
    def _edges_encoder(message: Dict[str, Any]) -> Tuple[bytes, int]:
        """Binary ``put_edges`` request payload, JSON when unrepresentable."""
        try:
            return (
                encode_binary_payload(message, kind="upds", path=("args", "updates")),
                FLAG_BINARY,
            )
        except ValueError:
            args = dict(message["args"])
            args["updates"] = [encode_edge_update(upd) for upd in args["updates"]]
            return encode_payload({**message, "args": args}), 0

    def apply_edge_updates(
        self, ts: Timestamp, updates: Iterable[EdgeUpdate]
    ) -> None:
        """Coalesce one window's updates into ``put_edges`` round trips.

        Instead of one exactly-once RPC per edge update (the inherited
        loop, still used against servers without the feature), the whole
        window ships as :attr:`batch_size`-bounded ``put_edges`` batches
        — each tagged with its own ``seq``, so a retried batch replays
        from the dedup window rather than re-applying.  The server
        applies updates in list order at the shared ``ts``, exactly as
        the per-op loop would have, which keeps all stores byte-identical.
        """
        updates = list(updates)
        if not updates:
            return
        if not self._binary:
            # pre-put_edges server: fall back to the per-update protocol
            super().apply_edge_updates(ts, updates)
            return
        chunk_size = min(self.batch_size, self._server_max_batch)
        for i in range(0, len(updates), chunk_size):
            chunk = updates[i : i + chunk_size]
            self._write(
                "put_edges",
                {"ts": ts, "updates": chunk},
                encoder=self._edges_encoder,
            )
        touched = {v for upd in updates for v in (upd.u, upd.v)}
        self._invalidate(*touched)

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        ts: Timestamp,
        label: Label = None,
        direction: Optional[str] = None,
    ) -> None:
        self._write(
            "add_edge",
            {"u": u, "v": v, "ts": ts, "label": label, "direction": direction},
        )
        self._invalidate(u, v)

    def delete_edge(self, u: VertexId, v: VertexId, ts: Timestamp) -> None:
        self._write("delete_edge", {"u": u, "v": v, "ts": ts})
        self._invalidate(u, v)

    def set_vertex_label(self, v: VertexId, ts: Timestamp, label: Label) -> None:
        self._write("set_vertex_label", {"v": v, "ts": ts, "label": label})
        self._invalidate(v)

    def ensure_vertex(self, v: VertexId) -> None:
        self._write("ensure_vertex", {"v": v})

    # -- read path (computed from fetched records) -------------------------

    def neighbor_states_at(
        self, v: VertexId, ts: Timestamp
    ) -> Dict[VertexId, Tuple[bool, bool]]:
        record = self._fetch(v)
        out: Dict[VertexId, Tuple[bool, bool]] = {}
        pre_ts = ts - 1
        for dst, versions in record.edges.items():
            pre = any(iv.alive_at(pre_ts) for iv in versions)
            post = any(iv.alive_at(ts) for iv in versions)
            if pre or post:
                out[dst] = (pre, post)
        return out

    def neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        return sorted(
            dst
            for dst, versions in self._fetch(v).edges.items()
            if any(iv.alive_at(ts) for iv in versions)
        )

    def union_neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        return sorted(self.neighbor_states_at(v, ts))

    def edge_alive_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        return any(iv.alive_at(ts) for iv in self._fetch(u).edges.get(v, ()))

    def edge_updated_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        return any(iv.updated_at(ts) for iv in self._fetch(u).edges.get(v, ()))

    def edge_label_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> Label:
        for iv in self._fetch(u).edges.get(v, ()):
            if iv.alive_at(ts):
                return iv.label
        return None

    def edge_direction_at(
        self, u: VertexId, v: VertexId, ts: Timestamp
    ) -> Optional[str]:
        for iv in self._fetch(u).edges.get(v, ()):
            if iv.alive_at(ts):
                return iv.direction
        return None

    def vertex_label_at(self, v: VertexId, ts: Timestamp) -> Label:
        return self._fetch(v).label_at(ts)

    def has_vertex(self, v: VertexId) -> bool:
        return bool(self._rpc.call("has_vertex", {"v": v}))

    def num_vertices(self) -> int:
        return int(self._rpc.call("num_vertices", {}))

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._rpc.call("list_vertices", {}))

    @property
    def latest_timestamp(self) -> Timestamp:
        # tracked client-side: seeded by hello, advanced by write responses
        return self._latest

    def updated_keys_in(self, ts: Timestamp) -> Dict[EdgeKey, bool]:
        with self._lock:
            memo = self._updated_memo
        if memo is not None and memo[0] == ts:
            return memo[1]
        keys = decode_updated_keys(self._rpc.call("updated_keys_in", {"ts": ts}))
        with self._lock:
            self._updated_memo = (ts, keys)
        return keys

    # -- record transfer ---------------------------------------------------

    def get_record(self, v: VertexId):
        return decode_record(self._rpc.call("get_record", {"v": v}))

    def iter_records(self) -> Iterator[Tuple[VertexId, VertexRecord]]:
        vs = self._rpc.call("list_vertices", {})
        chunks = [
            vs[i : i + self.batch_size] for i in range(0, len(vs), self.batch_size)
        ]
        for chunk, reply in self._multi_get_stream(chunks):
            for v, record in self._chunk_records(chunk, reply):
                if record is not None:
                    yield v, record

    def put_record(self, v: VertexId, record) -> None:
        self._write("put_record", {"v": v, "record": encode_record(record)})
        self._invalidate(v)

    def set_latest_timestamp(self, ts: Timestamp) -> None:
        self._write("set_latest_ts", {"ts": ts})
        with self._lock:
            self._latest = ts

    # -- maintenance -------------------------------------------------------

    def reclaim(self, horizon: Timestamp) -> ReclaimStats:
        """GC the server store; cached copies may hold reclaimed versions,
        so the client cache is dropped wholesale (as in the simulated
        client)."""
        stats = decode_reclaim_stats(self._rpc.call("reclaim", {"horizon": horizon}))
        self.drop_cache()
        with self._lock:
            self._updated_memo = None
        return stats

    def window_completed(self, ts: Timestamp) -> None:
        result = self._rpc.call("window_completed", {"ts": ts})
        with self._lock:
            self._latest = max(self._latest, decode_timestamp(result["latest_ts"]))

    def store_stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = dict(self._rpc.call("store_stats", {}))
        stats["kind"] = self.kind
        stats["fetches"] = self.log.fetches
        stats["fetch_bytes_proxy"] = self.log.records_bytes_proxy
        stats["fetch_simulated_seconds"] = self.log.simulated_seconds
        stats["client_cache_entries"] = len(self._cache)
        net = self.net_log
        stats["net_rpcs"] = net.rpcs
        stats["net_retries"] = net.retries
        stats["net_deadline_hits"] = net.deadline_hits
        stats["net_bytes_sent"] = net.bytes_sent
        stats["net_bytes_received"] = net.bytes_received
        return stats

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop connections; shut the embedded server down if we own one."""
        self._rpc.close()
        if self._server is not None:
            self._server.close()

    def __reduce__(self):
        # workers get a fresh client to the same server: sockets and the
        # embedded server (if any) stay with the parent process
        return (
            _reconnect,
            (
                self.address,
                self.costs,
                self.cache_capacity,
                self._rpc.deadline,
                self._rpc.retry,
                self._rpc.pool_size,
                self.batch_size,
            ),
        )


def _reconnect(
    address: Tuple[str, int],
    costs: FetchCosts,
    cache_capacity: Optional[int],
    deadline: float,
    retry: RetryPolicy,
    pool_size: int,
    batch_size: int = BATCH_SIZE,
) -> NetStoreClient:
    return NetStoreClient(
        address,
        costs=costs,
        cache_capacity=cache_capacity,
        deadline=deadline,
        retry=retry,
        pool_size=pool_size,
        batch_size=batch_size,
    )

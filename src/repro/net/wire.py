"""Message payload encoding: canonical JSON plus record-type codecs.

Frame payloads are UTF-8 **canonical JSON** — keys sorted, separators
compact — so encoding is deterministic: the same logical message is the
same bytes on every run, interpreter, and platform (the repo-wide
byte-identical-output contract extends down to the wire).  JSON keeps the
payload self-describing and debuggable with nothing but ``tcpdump``; the
frame header (:mod:`repro.net.frames`) carries the protocol version, so
payload shape changes bump :data:`~repro.net.frames.PROTOCOL_VERSION`.

Three message shapes travel in frames:

* ``REQUEST``  — ``{"id": n, "op": str, "args": {...}}`` plus optional
  ``"session"``/``"seq"`` for exactly-once writes and optional
  ``"trace"`` carrying the caller's trace context (see
  :func:`encode_trace_context`);
* ``RESPONSE`` — ``{"id": n, "result": ...}``;
* ``ERROR``    — ``{"id": n, "error": {"type": str, "message": str}}``.

The ``"trace"`` key rides the *graceful absent-field* compatibility
path rather than a version bump: servers read request fields with
``.get`` and ignore unknown keys, so a tracing client interoperates
with a pre-tracing server (the context is simply dropped) and vice
versa.  Servers that understand it advertise ``"features": ["trace"]``
in the hello response.

The codecs below translate the store's value types to and from JSON-safe
structures.  The edge-version list format is deliberately the same
``[added_ts, deleted_ts, label, direction]`` quad the checkpoint file
format uses (:mod:`repro.store.checkpoint`), so a record reads the same
on disk and on the wire.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.net.errors import ProtocolError
from repro.store.api import ReclaimStats
from repro.store.mvstore import EdgeInterval, VertexRecord
from repro.types import EdgeKey, EdgeUpdate, Timestamp


def encode_payload(message: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes for one message (deterministic)."""
    return json.dumps(
        message, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a message payload; malformed bytes are a protocol fault."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return message


# -- trace context -----------------------------------------------------------


def encode_trace_context(
    trace_id: str, span_id: int, node: str, flags: int = 1, attempt: int = 0
) -> List[Any]:
    """The wire form of a trace context (the optional ``"trace"`` key).

    A fixed ``[trace_id, span_id, node, flags, attempt]`` quintuple — the
    same positional-list convention the edge-version quads use, and a
    fraction of the bytes (and of the ``json`` encode/decode time) a keyed
    object would cost on a field that rides **every** request.  ``attempt``
    is the zero-based retry attempt number of the request carrying this
    context; the server records it on its span so retried RPCs are
    attributable per attempt in a merged trace.
    """
    return [trace_id, span_id, node, flags, attempt]


def decode_trace_context(value: Any) -> Optional[Tuple[str, int, str, int, int]]:
    """Validate a request's ``"trace"`` field; tolerant of absence.

    Returns the ``(trace_id, span_id, node, flags, attempt)`` quintuple,
    or ``None`` when the field is absent or malformed — a bad trace
    context must never fail the RPC it rides on (tracing is best-effort
    observability, not part of the store contract).  The two trailing
    fields are optional on the wire and individually fall back to their
    defaults when malformed.
    """
    if type(value) is not list or not 3 <= len(value) <= 5:
        return None
    trace_id, span_id, node = value[0], value[1], value[2]
    if not isinstance(trace_id, str) or not trace_id:
        return None
    if not isinstance(span_id, int) or isinstance(span_id, bool):
        return None
    if not isinstance(node, str):
        return None
    flags = value[3] if len(value) > 3 else 1
    if not isinstance(flags, int) or isinstance(flags, bool):
        flags = 1
    attempt = value[4] if len(value) > 4 else 0
    if not isinstance(attempt, int) or isinstance(attempt, bool):
        attempt = 0
    return trace_id, span_id, node, flags, attempt


# -- record-map types --------------------------------------------------------


def encode_record(record: Optional[VertexRecord]) -> Optional[dict]:
    """JSON-safe form of a vertex record (None stays None)."""
    if record is None:
        return None
    return {
        "labels": [[ts, label] for ts, label in record.label_history],
        "edges": {
            str(dst): [
                [iv.added_ts, iv.deleted_ts, iv.label, iv.direction]
                for iv in versions
            ]
            for dst, versions in record.edges.items()
        },
    }


def decode_record(data: Optional[dict]) -> Optional[VertexRecord]:
    """Rebuild a vertex record from :func:`encode_record` output.

    The decoded record is a deep private copy: every interval list is
    freshly built, so callers may cache it without aliasing the server's
    state.
    """
    if data is None:
        return None
    return VertexRecord(
        label_history=[(ts, label) for ts, label in data["labels"]],
        edges={
            int(dst): [
                EdgeInterval(
                    added_ts=entry[0],
                    deleted_ts=entry[1],
                    label=entry[2],
                    direction=entry[3],
                )
                for entry in versions
            ]
            for dst, versions in data["edges"].items()
        },
    )


def encode_edge_update(update: EdgeUpdate) -> list:
    """JSON-safe form of an :class:`~repro.types.EdgeUpdate`."""
    return [update.u, update.v, update.added, update.label, update.direction]


def decode_edge_update(data: list) -> EdgeUpdate:
    u, v, added, label, direction = data
    return EdgeUpdate(u, v, added=added, label=label, direction=direction)


def encode_updated_keys(keys: Dict[EdgeKey, bool]) -> List[list]:
    """Deterministically ordered ``updated_keys_in`` result."""
    return [[u, v, added] for (u, v), added in sorted(keys.items())]


def decode_updated_keys(data: List[list]) -> Dict[EdgeKey, bool]:
    return {(u, v): added for u, v, added in data}


def encode_reclaim_stats(stats: ReclaimStats) -> dict:
    return {
        "horizon": stats.horizon,
        "reclaimed": stats.reclaimed,
        "per_shard": {str(s): n for s, n in sorted(stats.per_shard.items())},
        "index_pruned": stats.index_pruned,
        "cache_invalidated": stats.cache_invalidated,
    }


def decode_reclaim_stats(data: dict) -> ReclaimStats:
    return ReclaimStats(
        horizon=data["horizon"],
        reclaimed=data["reclaimed"],
        per_shard={int(s): n for s, n in data["per_shard"].items()},
        index_pruned=data["index_pruned"],
        cache_invalidated=data["cache_invalidated"],
    )


def decode_timestamp(value: Any) -> Timestamp:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"timestamp field is not an integer: {value!r}")
    return value


def split_address(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI's ``--store-addr`` syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} is not host:port")
    return host, int(port)

"""Message payload encoding: canonical JSON plus record-type codecs.

Frame payloads are UTF-8 **canonical JSON** — keys sorted, separators
compact — so encoding is deterministic: the same logical message is the
same bytes on every run, interpreter, and platform (the repo-wide
byte-identical-output contract extends down to the wire).  JSON keeps the
payload self-describing and debuggable with nothing but ``tcpdump``; the
frame header (:mod:`repro.net.frames`) carries the protocol version, so
payload shape changes bump :data:`~repro.net.frames.PROTOCOL_VERSION`.

Three message shapes travel in frames:

* ``REQUEST``  — ``{"id": n, "op": str, "args": {...}}`` plus optional
  ``"session"``/``"seq"`` for exactly-once writes and optional
  ``"trace"`` carrying the caller's trace context (see
  :func:`encode_trace_context`);
* ``RESPONSE`` — ``{"id": n, "result": ...}``;
* ``ERROR``    — ``{"id": n, "error": {"type": str, "message": str}}``.

The ``"trace"`` key rides the *graceful absent-field* compatibility
path rather than a version bump: servers read request fields with
``.get`` and ignore unknown keys, so a tracing client interoperates
with a pre-tracing server (the context is simply dropped) and vice
versa.  Servers that understand it advertise ``"features": ["trace"]``
in the hello response.

The codecs below translate the store's value types to and from JSON-safe
structures.  The edge-version list format is deliberately the same
``[added_ts, deleted_ts, label, direction]`` quad the checkpoint file
format uses (:mod:`repro.store.checkpoint`), so a record reads the same
on disk and on the wire.

Binary fast path
    Frames flagged :data:`~repro.net.frames.FLAG_BINARY` carry a hybrid
    payload instead of pure JSON: a ``u32`` length-prefixed canonical-JSON
    **envelope** (the message minus its record-heavy field, plus a ``_b``
    marker naming the blob kind and where the decoded value belongs)
    followed by a struct-packed **blob** of edge-version quads with a
    shared label string table.  See :func:`encode_binary_payload` /
    :func:`decode_binary_payload`.  The codec is strict: values it cannot
    represent (non-int timestamps, > 65534 distinct labels, out-of-range
    ids) raise ``ValueError`` at encode time so callers fall back to
    JSON, and any truncated or oversized blob raises
    :class:`~repro.net.errors.ProtocolError` at decode time.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.net.errors import ProtocolError
from repro.store.api import ReclaimStats
from repro.store.mvstore import EdgeInterval, VertexRecord
from repro.types import EdgeKey, EdgeUpdate, Timestamp


def encode_payload(message: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes for one message (deterministic)."""
    return json.dumps(
        message, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a message payload; malformed bytes are a protocol fault."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return message


# -- trace context -----------------------------------------------------------


def encode_trace_context(
    trace_id: str, span_id: int, node: str, flags: int = 1, attempt: int = 0
) -> List[Any]:
    """The wire form of a trace context (the optional ``"trace"`` key).

    A fixed ``[trace_id, span_id, node, flags, attempt]`` quintuple — the
    same positional-list convention the edge-version quads use, and a
    fraction of the bytes (and of the ``json`` encode/decode time) a keyed
    object would cost on a field that rides **every** request.  ``attempt``
    is the zero-based retry attempt number of the request carrying this
    context; the server records it on its span so retried RPCs are
    attributable per attempt in a merged trace.
    """
    return [trace_id, span_id, node, flags, attempt]


def decode_trace_context(value: Any) -> Optional[Tuple[str, int, str, int, int]]:
    """Validate a request's ``"trace"`` field; tolerant of absence.

    Returns the ``(trace_id, span_id, node, flags, attempt)`` quintuple,
    or ``None`` when the field is absent or malformed — a bad trace
    context must never fail the RPC it rides on (tracing is best-effort
    observability, not part of the store contract).  The two trailing
    fields are optional on the wire and individually fall back to their
    defaults when malformed.
    """
    if type(value) is not list or not 3 <= len(value) <= 5:
        return None
    trace_id, span_id, node = value[0], value[1], value[2]
    if not isinstance(trace_id, str) or not trace_id:
        return None
    if not isinstance(span_id, int) or isinstance(span_id, bool):
        return None
    if not isinstance(node, str):
        return None
    flags = value[3] if len(value) > 3 else 1
    if not isinstance(flags, int) or isinstance(flags, bool):
        flags = 1
    attempt = value[4] if len(value) > 4 else 0
    if not isinstance(attempt, int) or isinstance(attempt, bool):
        attempt = 0
    return trace_id, span_id, node, flags, attempt


# -- record-map types --------------------------------------------------------


def encode_record(record: Optional[VertexRecord]) -> Optional[dict]:
    """JSON-safe form of a vertex record (None stays None)."""
    if record is None:
        return None
    return {
        "labels": [[ts, label] for ts, label in record.label_history],
        "edges": {
            str(dst): [
                [iv.added_ts, iv.deleted_ts, iv.label, iv.direction]
                for iv in versions
            ]
            for dst, versions in record.edges.items()
        },
    }


def decode_record(data: Optional[dict]) -> Optional[VertexRecord]:
    """Rebuild a vertex record from :func:`encode_record` output.

    The decoded record is a deep private copy: every interval list is
    freshly built, so callers may cache it without aliasing the server's
    state.
    """
    if data is None:
        return None
    return VertexRecord(
        label_history=[(ts, label) for ts, label in data["labels"]],
        edges={
            int(dst): [
                EdgeInterval(
                    added_ts=entry[0],
                    deleted_ts=entry[1],
                    label=entry[2],
                    direction=entry[3],
                )
                for entry in versions
            ]
            for dst, versions in data["edges"].items()
        },
    )


def encode_edge_update(update: EdgeUpdate) -> list:
    """JSON-safe form of an :class:`~repro.types.EdgeUpdate`."""
    return [update.u, update.v, update.added, update.label, update.direction]


def decode_edge_update(data: list) -> EdgeUpdate:
    u, v, added, label, direction = data
    return EdgeUpdate(u, v, added=added, label=label, direction=direction)


def encode_updated_keys(keys: Dict[EdgeKey, bool]) -> List[list]:
    """Deterministically ordered ``updated_keys_in`` result."""
    return [[u, v, added] for (u, v), added in sorted(keys.items())]


def decode_updated_keys(data: List[list]) -> Dict[EdgeKey, bool]:
    return {(u, v): added for u, v, added in data}


def encode_reclaim_stats(stats: ReclaimStats) -> dict:
    return {
        "horizon": stats.horizon,
        "reclaimed": stats.reclaimed,
        "per_shard": {str(s): n for s, n in sorted(stats.per_shard.items())},
        "index_pruned": stats.index_pruned,
        "cache_invalidated": stats.cache_invalidated,
    }


def decode_reclaim_stats(data: dict) -> ReclaimStats:
    return ReclaimStats(
        horizon=data["horizon"],
        reclaimed=data["reclaimed"],
        per_shard={int(s): n for s, n in data["per_shard"].items()},
        index_pruned=data["index_pruned"],
        cache_invalidated=data["cache_invalidated"],
    )


def decode_timestamp(value: Any) -> Timestamp:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"timestamp field is not an integer: {value!r}")
    return value


# -- binary record codec (the FLAG_BINARY fast path) -------------------------

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_VERTEX_HEAD = struct.Struct(">qB")  # vertex id, presence byte
_LABEL_CHANGE = struct.Struct(">qH")  # ts, label index
_NEIGHBOR_HEAD = struct.Struct(">qI")  # neighbor id, version count
_EDGE_VERSION = struct.Struct(">qqHB")  # added, deleted (-1 = None), label, dir
_UPDATE = struct.Struct(">qqBHB")  # u, v, added, label, dir
#: a neighbor head immediately followed by its first edge version — the
#: overwhelmingly common single-version neighbor packs/unpacks in ONE
#: struct call instead of two (pure layout fusion, not a wire change)
_NEIGHBOR_ONE = struct.Struct(">qIqqHB")

#: string-table index meaning "label is None"
_NO_LABEL = 0xFFFF

#: direction codes are closed over the protocol's legal direction values
_DIRECTIONS: Tuple[Optional[str], ...] = (None, "fwd", "rev", "both")
_DIR_CODE = {d: i for i, d in enumerate(_DIRECTIONS)}

#: blob kinds the binary payload may carry
BINARY_KINDS = ("recs", "upds")


class RecordsPayload:
    """A record-map result staged for either payload encoding.

    Handlers that serve whole records (``multi_get``, ``get_record``)
    return one of these instead of committing to a wire form; the frame
    writer then packs :attr:`records` with the binary codec when the
    request opted in (and the values are representable) or falls back to
    :meth:`to_json`.  The client-side binary decoder hands the same type
    back, so ``isinstance(reply, RecordsPayload)`` distinguishes the two
    reply forms without sniffing dict shapes.

    ``single=True`` marks a one-record map whose **JSON** form is the
    bare record (the historical ``get_record`` reply shape) rather than
    a map — that keeps the JSON wire format byte-identical for old
    clients while the binary form is uniformly a map.
    """

    __slots__ = ("records", "single")

    def __init__(
        self,
        records: Dict[int, Optional[VertexRecord]],
        *,
        single: bool = False,
    ) -> None:
        self.records = records
        self.single = single

    def to_json(self) -> Any:
        if self.single:
            record = next(iter(self.records.values()), None)
            return encode_record(record)
        return {str(v): encode_record(rec) for v, rec in self.records.items()}


class _StringTable:
    """Intern labels into dense ``u16`` indices (encode side)."""

    __slots__ = ("_index", "entries")

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self.entries: List[str] = []

    def index_of(self, label: Optional[str]) -> int:
        if label is None:
            return _NO_LABEL
        if not isinstance(label, str):
            raise ValueError(f"binary codec requires str labels, not {label!r}")
        idx = self._index.get(label)
        if idx is None:
            idx = len(self.entries)
            if idx >= _NO_LABEL:
                raise ValueError("too many distinct labels for the binary codec")
            self._index[label] = idx
            self.entries.append(label)
        return idx

    def encode(self) -> bytes:
        out = bytearray(_U32.pack(len(self.entries)))
        for label in self.entries:
            raw = label.encode("utf-8")
            if len(raw) > 0xFFFE:
                raise ValueError("label too long for the binary codec")
            out += _U16.pack(len(raw))
            out += raw
        return bytes(out)


class _BlobReader:
    """Bounds-checked cursor over a binary blob (decode side)."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def unpack(self, st: struct.Struct) -> tuple:
        end = self.pos + st.size
        if end > len(self.data):
            raise ProtocolError(
                f"binary payload truncated at byte {self.pos}"
            )
        values = st.unpack_from(self.data, self.pos)
        self.pos = end
        return values

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ProtocolError(
                f"binary payload truncated at byte {self.pos}"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def read_string_table(self) -> List[Optional[str]]:
        (count,) = self.unpack(_U32)
        table: List[Optional[str]] = []
        for _ in range(count):
            (length,) = self.unpack(_U16)
            try:
                table.append(self.take(length).decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"undecodable label in string table: {exc}") from None
        return table

    def label_at(self, idx: int, table: List[Optional[str]]) -> Optional[str]:
        if idx == _NO_LABEL:
            return None
        if idx >= len(table):
            raise ProtocolError(f"label index {idx} outside string table")
        return table[idx]


def _require_wire_int(value: Any, what: str) -> int:
    # bool is an int subclass but would change meaning across codecs
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"binary codec requires int {what}, not {value!r}")
    return value


def _dir_code(direction: Optional[str]) -> int:
    code = _DIR_CODE.get(direction)
    if code is None:
        raise ValueError(f"direction {direction!r} has no binary encoding")
    return code


def _encode_records_blob(records: Dict[int, Optional[VertexRecord]]) -> bytes:
    # Hot loop: the server packs thousands of edge versions per multi_get
    # reply, so struct ``pack`` methods are bound into locals and the
    # int guards are inline ``type(x) is int`` checks (exact type: bool
    # must still be rejected, its JSON form differs) with the slow
    # ``_require_wire_int`` raising the descriptive ValueError only on
    # the fallback path.
    labels = _StringTable()
    label_index = labels.index_of
    pack_vertex = _VERTEX_HEAD.pack
    pack_label = _LABEL_CHANGE.pack
    pack_neighbor = _NEIGHBOR_HEAD.pack
    pack_neighbor_one = _NEIGHBOR_ONE.pack
    pack_edge = _EDGE_VERSION.pack
    pack_u32 = _U32.pack
    dir_codes = _DIR_CODE
    no_label = _NO_LABEL
    body = bytearray(pack_u32(len(records)))
    try:
        for v, record in records.items():
            if type(v) is not int:
                _require_wire_int(v, "vertex id")
            if record is None:
                body += pack_vertex(v, 0)
                continue
            body += pack_vertex(v, 1)
            history = record.label_history
            body += pack_u32(len(history))
            for ts, label in history:
                if type(ts) is not int:
                    _require_wire_int(ts, "timestamp")
                body += pack_label(
                    ts, no_label if label is None else label_index(label)
                )
            edges = record.edges
            body += pack_u32(len(edges))
            for dst, versions in edges.items():
                if type(dst) is not int:
                    _require_wire_int(dst, "vertex id")
                n_versions = len(versions)
                if n_versions == 1:
                    # fused pack: head + sole version in one struct call
                    iv = versions[0]
                    added = iv.added_ts
                    if type(added) is not int:
                        _require_wire_int(added, "timestamp")
                    deleted = iv.deleted_ts
                    if deleted is None:
                        deleted = -1
                    elif type(deleted) is not int:
                        _require_wire_int(deleted, "timestamp")
                    label = iv.label
                    code = dir_codes.get(iv.direction)
                    if code is None:
                        raise ValueError(
                            f"direction {iv.direction!r} has no binary encoding"
                        )
                    body += pack_neighbor_one(
                        dst,
                        1,
                        added,
                        deleted,
                        no_label if label is None else label_index(label),
                        code,
                    )
                    continue
                body += pack_neighbor(dst, n_versions)
                for iv in versions:
                    added = iv.added_ts
                    if type(added) is not int:
                        _require_wire_int(added, "timestamp")
                    deleted = iv.deleted_ts
                    if deleted is None:
                        deleted = -1
                    elif type(deleted) is not int:
                        _require_wire_int(deleted, "timestamp")
                    label = iv.label
                    code = dir_codes.get(iv.direction)
                    if code is None:
                        raise ValueError(
                            f"direction {iv.direction!r} has no binary encoding"
                        )
                    body += pack_edge(
                        added,
                        deleted,
                        no_label if label is None else label_index(label),
                        code,
                    )
    except struct.error as exc:  # out-of-range id/ts: fall back to JSON
        raise ValueError(f"value out of range for binary codec: {exc}") from None
    return labels.encode() + bytes(body)


def _decode_records_blob(reader: _BlobReader) -> Dict[int, Optional[VertexRecord]]:
    table = reader.read_string_table()
    # Hot loop: a prefetch decodes thousands of these structs per reply,
    # so the cursor is inlined into locals and bounds checking is left to
    # ``struct.unpack_from`` itself (struct.error == truncated payload)
    # instead of paying a _BlobReader method call per struct.
    data = reader.data
    pos = reader.pos
    end = len(data)
    vertex_head = _VERTEX_HEAD.unpack_from
    label_change = _LABEL_CHANGE.unpack_from
    neighbor_head = _NEIGHBOR_HEAD.unpack_from
    neighbor_one = _NEIGHBOR_ONE.unpack_from
    edge_version = _EDGE_VERSION.unpack_from
    u32 = _U32.unpack_from
    vertex_head_n = _VERTEX_HEAD.size
    label_change_n = _LABEL_CHANGE.size
    neighbor_head_n = _NEIGHBOR_HEAD.size
    neighbor_one_n = _NEIGHBOR_ONE.size
    edge_version_n = _EDGE_VERSION.size
    no_label = _NO_LABEL
    directions = _DIRECTIONS
    label_count = len(table)
    records: Dict[int, Optional[VertexRecord]] = {}
    try:
        (count,) = u32(data, pos)
        pos += 4
        for _ in range(count):
            v, present = vertex_head(data, pos)
            pos += vertex_head_n
            if present == 0:
                records[v] = None
                continue
            if present != 1:
                raise ProtocolError(f"bad record presence byte {present}")
            (n_labels,) = u32(data, pos)
            pos += 4
            history = []
            for _ in range(n_labels):
                ts, idx = label_change(data, pos)
                pos += label_change_n
                if idx == no_label:
                    history.append((ts, None))
                elif idx < label_count:
                    history.append((ts, table[idx]))
                else:
                    raise ProtocolError(f"label index {idx} outside string table")
            (n_neighbors,) = u32(data, pos)
            pos += 4
            edges: Dict[int, List[EdgeInterval]] = {}
            for _ in range(n_neighbors):
                # Speculative fused read: when enough bytes remain for a
                # head + one version, unpack both at once; if the version
                # count turns out not to be 1, only the head's bytes are
                # consumed and the per-version loop below takes over.
                if end - pos >= neighbor_one_n:
                    dst, n_versions, added, deleted, idx, dcode = neighbor_one(
                        data, pos
                    )
                    if n_versions == 1:
                        pos += neighbor_one_n
                        if idx == no_label:
                            label = None
                        elif idx < label_count:
                            label = table[idx]
                        else:
                            raise ProtocolError(
                                f"label index {idx} outside string table"
                            )
                        if dcode >= 4:
                            raise ProtocolError(f"bad direction code {dcode}")
                        edges[dst] = [
                            EdgeInterval(
                                added,
                                None if deleted == -1 else deleted,
                                label,
                                directions[dcode],
                            )
                        ]
                        continue
                    pos += neighbor_head_n
                else:
                    dst, n_versions = neighbor_head(data, pos)
                    pos += neighbor_head_n
                versions = []
                for _ in range(n_versions):
                    added, deleted, idx, dcode = edge_version(data, pos)
                    pos += edge_version_n
                    if idx == no_label:
                        label = None
                    elif idx < label_count:
                        label = table[idx]
                    else:
                        raise ProtocolError(
                            f"label index {idx} outside string table"
                        )
                    if dcode >= 4:
                        raise ProtocolError(f"bad direction code {dcode}")
                    versions.append(
                        EdgeInterval(
                            added,
                            None if deleted == -1 else deleted,
                            label,
                            directions[dcode],
                        )
                    )
                edges[dst] = versions
            records[v] = VertexRecord(history, edges)
    except struct.error:
        raise ProtocolError(f"binary payload truncated at byte {pos}") from None
    reader.pos = pos
    return records


def _encode_updates_blob(updates: Iterable[EdgeUpdate]) -> bytes:
    labels = _StringTable()
    body = bytearray()
    count = 0
    try:
        for upd in updates:
            body += _UPDATE.pack(
                _require_wire_int(upd.u, "vertex id"),
                _require_wire_int(upd.v, "vertex id"),
                1 if upd.added else 0,
                labels.index_of(upd.label),
                _dir_code(upd.direction),
            )
            count += 1
    except struct.error as exc:
        raise ValueError(f"value out of range for binary codec: {exc}") from None
    return labels.encode() + _U32.pack(count) + bytes(body)


def _decode_updates_blob(reader: _BlobReader) -> List[EdgeUpdate]:
    table = reader.read_string_table()
    (count,) = reader.unpack(_U32)
    updates = []
    for _ in range(count):
        u, v, added, idx, dcode = reader.unpack(_UPDATE)
        if added not in (0, 1):
            raise ProtocolError(f"bad update added byte {added}")
        if dcode >= len(_DIRECTIONS):
            raise ProtocolError(f"bad direction code {dcode}")
        updates.append(
            EdgeUpdate(
                u,
                v,
                added=bool(added),
                label=reader.label_at(idx, table),
                direction=_DIRECTIONS[dcode],
            )
        )
    return updates


_BLOB_CODECS = {
    "recs": (_encode_records_blob, _decode_records_blob),
    "upds": (_encode_updates_blob, _decode_updates_blob),
}


def encode_binary_payload(
    message: Dict[str, Any], *, kind: str, path: Tuple[str, ...]
) -> bytes:
    """Pack one message as ``u32 env_len | JSON envelope | binary blob``.

    The value at ``path`` (e.g. ``("result",)`` or ``("args",
    "updates")``) is lifted out of the message into the blob; the
    envelope keeps everything else plus a ``_b`` marker ``[kind, *path]``
    telling the decoder where the value belongs.  Raises ``ValueError``
    when the value is not representable (callers fall back to JSON) and
    ``KeyError`` when ``path`` is absent from the message.
    """
    encode_blob = _BLOB_CODECS[kind][0]
    if len(path) == 1:
        value = message[path[0]]
        envelope = {k: v for k, v in message.items() if k != path[0]}
    else:
        inner = message[path[0]]
        value = inner[path[1]]
        envelope = dict(message)
        envelope[path[0]] = {k: v for k, v in inner.items() if k != path[1]}
    if isinstance(value, RecordsPayload):
        value = value.records
    envelope["_b"] = [kind, *path]
    blob = encode_blob(value)
    env = encode_payload(envelope)
    return _U32.pack(len(env)) + env + blob


def decode_binary_payload(payload: bytes) -> Dict[str, Any]:
    """Unpack a :data:`~repro.net.frames.FLAG_BINARY` payload.

    Returns the full message dict with the blob decoded back into place:
    ``recs`` blobs land as a :class:`RecordsPayload`, ``upds`` blobs as a
    list of :class:`~repro.types.EdgeUpdate`.  Truncated envelopes or
    blobs, unknown kinds, bad markers, and trailing bytes after the blob
    all raise :class:`~repro.net.errors.ProtocolError`.
    """
    if len(payload) < _U32.size:
        raise ProtocolError("binary payload shorter than its length prefix")
    (env_len,) = _U32.unpack_from(payload)
    if _U32.size + env_len > len(payload):
        raise ProtocolError(
            f"binary envelope of {env_len} bytes overruns the payload"
        )
    envelope = decode_payload(payload[_U32.size : _U32.size + env_len])
    marker = envelope.pop("_b", None)
    if (
        not isinstance(marker, list)
        or not 2 <= len(marker) <= 3
        or not all(isinstance(part, str) for part in marker)
    ):
        raise ProtocolError(f"bad binary payload marker {marker!r}")
    kind, path = marker[0], tuple(marker[1:])
    if kind not in _BLOB_CODECS:
        raise ProtocolError(f"unknown binary blob kind {kind!r}")
    reader = _BlobReader(payload, _U32.size + env_len)
    value: Any = _BLOB_CODECS[kind][1](reader)
    if reader.pos != len(payload):
        raise ProtocolError(
            f"{len(payload) - reader.pos} trailing bytes after binary blob"
        )
    if kind == "recs":
        value = RecordsPayload(value)
    if len(path) == 1:
        envelope[path[0]] = value
    else:
        inner = envelope.get(path[0])
        if not isinstance(inner, dict):
            raise ProtocolError(f"binary marker path {path!r} missing from envelope")
        inner[path[1]] = value
    return envelope


def split_address(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI's ``--store-addr`` syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} is not host:port")
    return host, int(port)

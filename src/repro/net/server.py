"""``StoreServer``: any :class:`~repro.store.api.GraphStore` on a TCP port.

The server is a thin dispatch shell: one listening socket, one thread per
connection, one operation table mapping wire ``op`` names onto the public
store protocol (it deliberately touches nothing store-private, so every
store kind — mv, sharded, even another client — serves identically).
All store access is serialized under one lock; at reproduction scale the
store is CPU-light and the GIL would serialize it anyway, and one lock
keeps the write path's non-decreasing-timestamp invariant trivially safe
under concurrent clients.

Exactly-once writes
    Writes are not idempotent (re-adding a live edge is an
    ``InvalidUpdateError``), yet the client retries on transport faults —
    including the case where the write *applied* and only the response
    was lost.  The server therefore deduplicates: each client obtains a
    ``session`` id via the ``hello`` op and tags every write with a
    monotonically increasing ``seq``; the server remembers the last
    :data:`DEDUP_WINDOW` results per session and replays the remembered
    result for a repeated ``(session, seq)`` instead of re-executing.

Failures the handler can classify are returned as ``ERROR`` frames
carrying the exception's type name and message (the client maps names
back to local exception types); anything else tears down the connection,
which the client surfaces as a transport fault and retries elsewhere.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TesseractError
from repro.net.errors import NetError, ProtocolError, TruncatedFrameError
from repro.net.frames import (
    MAX_PAYLOAD,
    MessageType,
    encode_frame,
    read_frame,
)
from repro.net.wire import (
    decode_payload,
    encode_payload,
    encode_reclaim_stats,
    encode_record,
    encode_updated_keys,
)
from repro.store.api import GraphStore

#: write results remembered per session for retry deduplication
DEDUP_WINDOW = 64

#: most records one multi_get may request
MAX_BATCH = 1024


class StoreServer:
    """Serve a :class:`GraphStore` over framed RPC on a TCP socket.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  :meth:`start` serves from a background thread (the
    embedded-store mode the ``net`` store kind uses), :meth:`serve_forever`
    serves from the calling thread (the ``repro serve-store`` CLI mode).
    """

    def __init__(
        self,
        store: GraphStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_payload: int = MAX_PAYLOAD,
        max_batch: int = MAX_BATCH,
    ) -> None:
        self.store = store
        self.max_payload = max_payload
        self.max_batch = max_batch
        self._lock = threading.RLock()  # re-entrant: ops run under dispatch
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._next_session = 0
        # session id -> {seq: result}, insertion-ordered for pruning
        self._applied: Dict[int, Dict[int, Any]] = {}
        self._closed = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(32)
        self._ops = self._build_ops()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._sock.getsockname()[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "StoreServer":
        """Accept connections from a daemon thread; returns self."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-store-server", daemon=True
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept-and-dispatch loop; returns when :meth:`close` is called."""
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listening socket closed by close()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.append(conn)
                self._threads.append(handler)
            handler.start()

    def close(self) -> None:
        """Stop accepting, sever live connections, release the port."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns, self._conns = self._conns, []
        self._sock.close()  # unblocks accept()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    # -- per-connection loop -----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    msg_type, payload = read_frame(
                        conn.recv, max_payload=self.max_payload
                    )
                    if msg_type is not MessageType.REQUEST:
                        raise ProtocolError(
                            f"client sent a {msg_type.name} frame"
                        )
                    request = decode_payload(payload)
                except TruncatedFrameError:
                    return  # peer went away (cleanly or not); nothing to answer
                except ProtocolError as exc:
                    self._send_error(conn, None, exc)
                    return  # framing is unrecoverable mid-stream
                self._send(conn, *self._dispatch(request))
        except OSError:
            pass  # connection reset while replying; client will retry
        finally:
            conn.close()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _dispatch(self, request: Dict[str, Any]) -> Tuple[MessageType, dict]:
        req_id = request.get("id")
        op = request.get("op")
        handler = self._ops.get(op)
        if handler is None:
            return self._error(req_id, "UnknownOperationError", f"unknown op {op!r}")
        args = request.get("args") or {}
        session = request.get("session")
        seq = request.get("seq")
        try:
            with self._lock:
                if seq is not None and session is not None:
                    applied = self._applied.setdefault(session, {})
                    if seq in applied:
                        result = applied[seq]  # retried write: replay result
                    else:
                        result = handler(args)
                        applied[seq] = result
                        while len(applied) > DEDUP_WINDOW:
                            applied.pop(next(iter(applied)))
                else:
                    result = handler(args)
        except (TesseractError, KeyError, ValueError, TypeError) as exc:
            return self._error(req_id, type(exc).__name__, str(exc))
        return MessageType.RESPONSE, {"id": req_id, "result": result}

    def _error(
        self, req_id: Any, remote_type: str, message: str
    ) -> Tuple[MessageType, dict]:
        return MessageType.ERROR, {
            "id": req_id,
            "error": {"type": remote_type, "message": message},
        }

    def _send(self, conn: socket.socket, msg_type: MessageType, body: dict) -> None:
        conn.sendall(encode_frame(msg_type, encode_payload(body)))

    def _send_error(self, conn: socket.socket, req_id: Any, exc: NetError) -> None:
        try:
            self._send(conn, *self._error(req_id, type(exc).__name__, str(exc)))
        except OSError:
            pass

    # -- the operation table -----------------------------------------------

    def _build_ops(self) -> Dict[str, Callable[[dict], Any]]:
        store = self.store
        ops: Dict[str, Callable[[dict], Any]] = {
            "ping": lambda a: {},
            "hello": self._op_hello,
            # record transfer (the fetch boundary)
            "get_record": lambda a: encode_record(store.get_record(a["v"])),
            "multi_get": self._op_multi_get,
            "put_record": self._write(
                lambda a: store.put_record(
                    a["v"], _require_record(a["record"])
                )
            ),
            "list_vertices": lambda a: sorted(store.vertices()),
            "has_vertex": lambda a: store.has_vertex(a["v"]),
            "num_vertices": lambda a: store.num_vertices(),
            "vertex_label_at": lambda a: store.vertex_label_at(a["v"], a["ts"]),
            "latest_ts": lambda a: store.latest_timestamp,
            "updated_keys_in": lambda a: encode_updated_keys(
                store.updated_keys_in(a["ts"])
            ),
            # write path (ingress)
            "add_edge": self._write(
                lambda a: store.add_edge(
                    a["u"],
                    a["v"],
                    a["ts"],
                    label=a.get("label"),
                    direction=a.get("direction"),
                )
            ),
            "delete_edge": self._write(
                lambda a: store.delete_edge(a["u"], a["v"], a["ts"])
            ),
            "set_vertex_label": self._write(
                lambda a: store.set_vertex_label(a["v"], a["ts"], a.get("label"))
            ),
            "ensure_vertex": self._write(lambda a: store.ensure_vertex(a["v"])),
            "set_latest_ts": self._write(
                lambda a: store.set_latest_timestamp(a["ts"])
            ),
            # maintenance
            "reclaim": lambda a: encode_reclaim_stats(store.reclaim(a["horizon"])),
            "window_completed": self._op_window_completed,
            "store_stats": lambda a: store.store_stats(),
        }
        return ops

    def _op_hello(self, args: dict) -> dict:
        session = args.get("session")
        if session is None:
            with self._lock:  # re-entrant under dispatch
                self._next_session += 1
                session = self._next_session
        return {
            "session": session,
            "kind": self.store.kind,
            "num_shards": self.store.shards.num_shards,
            "latest_ts": self.store.latest_timestamp,
        }

    def _op_multi_get(self, args: dict) -> Dict[str, Optional[dict]]:
        vs = args["vs"]
        if len(vs) > self.max_batch:
            raise ValueError(
                f"multi_get batch of {len(vs)} exceeds limit {self.max_batch}"
            )
        return {str(v): encode_record(self.store.get_record(v)) for v in vs}

    def _op_window_completed(self, args: dict) -> dict:
        self.store.window_completed(args["ts"])
        return {"latest_ts": self.store.latest_timestamp}

    def _write(self, apply: Callable[[dict], None]) -> Callable[[dict], dict]:
        """Wrap a mutation: apply, then return the server's write clock.

        Every write response carries ``latest_ts`` so the client tracks
        the store clock without a per-read RPC.
        """

        def handler(args: dict) -> dict:
            apply(args)
            return {"latest_ts": self.store.latest_timestamp}

        return handler


def _require_record(data: Optional[dict]):
    from repro.net.wire import decode_record

    record = decode_record(data)
    if record is None:
        raise ValueError("put_record requires a record body")
    return record

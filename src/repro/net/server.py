"""``StoreServer``: any :class:`~repro.store.api.GraphStore` on a TCP port.

The server is a thin dispatch shell: one listening socket, one thread per
connection, one operation table mapping wire ``op`` names onto the public
store protocol (it deliberately touches nothing store-private, so every
store kind — mv, sharded, even another client — serves identically).
All store access is serialized under one lock; at reproduction scale the
store is CPU-light and the GIL would serialize it anyway, and one lock
keeps the write path's non-decreasing-timestamp invariant trivially safe
under concurrent clients.

Exactly-once writes
    Writes are not idempotent (re-adding a live edge is an
    ``InvalidUpdateError``), yet the client retries on transport faults —
    including the case where the write *applied* and only the response
    was lost.  The server therefore deduplicates: each client obtains a
    ``session`` id via the ``hello`` op and tags every write with a
    monotonically increasing ``seq``; the server remembers the last
    :data:`DEDUP_WINDOW` results per session and replays the remembered
    result for a repeated ``(session, seq)`` instead of re-executing.

Failures the handler can classify are returned as ``ERROR`` frames
carrying the exception's type name and message (the client maps names
back to local exception types); anything else tears down the connection,
which the client surfaces as a transport fault and retries elsewhere.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import TesseractError
from repro.net.errors import NetError, ProtocolError, TruncatedFrameError
from repro.net.frames import (
    FLAG_BINARY,
    FLAG_PIPELINE,
    MAX_PAYLOAD,
    MessageType,
    encode_frame,
    read_frame,
)
from repro.net.rpc import LATENCY_SAMPLE_CAP
from repro.net.wire import (
    RecordsPayload,
    decode_binary_payload,
    decode_edge_update,
    decode_payload,
    decode_trace_context,
    encode_binary_payload,
    encode_payload,
    encode_reclaim_stats,
    encode_updated_keys,
)
from repro.store.api import GraphStore
from repro.telemetry import MetricsRegistry, Telemetry, ensure
from repro.telemetry.bridge import NET_LATENCY_BUCKETS, store_to_registry
from repro.types import EdgeUpdate

#: write results remembered per session for retry deduplication
DEDUP_WINDOW = 64

#: most records one multi_get (or updates one put_edges) may carry
MAX_BATCH = 1024

#: wire capabilities this server advertises in the ``hello`` response:
#: "trace" (trace-context propagation), "bin" (binary record codec),
#: "pipe" (pipelined connections with read-ahead dispatch)
SERVER_FEATURES = ("trace", "bin", "pipe")

#: decoded requests buffered ahead of dispatch per pipelined connection
READAHEAD = 64

#: dispatch workers per pipelined connection — two is enough for a cheap
#: op to overtake an expensive one while the store lock still serializes
#: actual store access
PIPELINE_WORKERS = 2


class StoreServer:
    """Serve a :class:`GraphStore` over framed RPC on a TCP socket.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  :meth:`start` serves from a background thread (the
    embedded-store mode the ``net`` store kind uses), :meth:`serve_forever`
    serves from the calling thread (the ``repro serve-store`` CLI mode).
    """

    def __init__(
        self,
        store: GraphStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_payload: int = MAX_PAYLOAD,
        max_batch: int = MAX_BATCH,
        telemetry: Optional[Telemetry] = None,
        clock=time.monotonic,
    ) -> None:
        self.store = store
        self.max_payload = max_payload
        self.max_batch = max_batch
        self.telemetry = ensure(telemetry)
        self._clock = clock
        self._lock = threading.RLock()  # re-entrant: ops run under dispatch
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._next_session = 0
        # session id -> {seq: result}, insertion-ordered for pruning
        self._applied: Dict[int, Dict[int, Any]] = {}
        # always-on ops accounting (plain dicts under self._lock; projected
        # into a fresh MetricsRegistry only at scrape time)
        self._op_requests: Dict[str, int] = {}
        self._op_errors: Dict[str, int] = {}
        self._op_latencies: Dict[str, List[float]] = {}
        self._dedup_replays = 0
        self._pipelined_conns = 0
        self._inflight = 0
        self._closed = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(32)
        self._ops = self._build_ops()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._sock.getsockname()[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "StoreServer":
        """Accept connections from a daemon thread; returns self."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-store-server", daemon=True
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept-and-dispatch loop; returns when :meth:`close` is called."""
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listening socket closed by close()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.append(conn)
                self._threads.append(handler)
            handler.start()

    def close(self) -> None:
        """Stop accepting, sever live connections, release the port."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns, self._conns = self._conns, []
        self._sock.close()  # unblocks accept()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    # -- per-connection loop -----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request, flags = self._read_request(conn)
                except TruncatedFrameError:
                    return  # peer went away (cleanly or not); nothing to answer
                except ProtocolError as exc:
                    self._send_error(conn, None, exc)
                    return  # framing is unrecoverable mid-stream
                if flags & FLAG_PIPELINE:
                    # the client interleaves requests on this connection:
                    # switch to read-ahead dispatch for its remainder
                    self._serve_pipelined(conn, request)
                    return
                self._send_reply(conn, request, self._dispatch(request))
        except OSError:
            pass  # connection reset while replying; client will retry
        finally:
            conn.close()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _read_request(self, conn: socket.socket) -> Tuple[Dict[str, Any], int]:
        """One decoded request off the socket, plus its frame flags."""
        msg_type, flags, payload = read_frame(
            conn.recv, max_payload=self.max_payload
        )
        if msg_type is not MessageType.REQUEST:
            raise ProtocolError(f"client sent a {msg_type.name} frame")
        request = (
            decode_binary_payload(payload)
            if flags & FLAG_BINARY
            else decode_payload(payload)
        )
        return request, flags

    def _serve_pipelined(self, conn: socket.socket, request: Dict[str, Any]) -> None:
        """Read-ahead dispatch: decode eagerly, reply as ops complete.

        The connection's reader (this thread) keeps pulling frames into a
        bounded queue while :data:`PIPELINE_WORKERS` workers dispatch
        them, so the next request is already decoded when the store frees
        up and a cheap op may overtake an expensive one — responses go
        out in **completion order**, serialized only by a per-connection
        send lock, and the client matches them by message id.  The store
        itself stays serialized under the server lock, so write-path
        invariants (non-decreasing timestamps, dedup atomicity) are
        untouched by the concurrency here.
        """
        with self._lock:
            self._pipelined_conns += 1
        queue: Deque[Dict[str, Any]] = deque([request])
        cond = threading.Condition()
        send_lock = threading.Lock()
        open_state = {"open": True}

        def worker() -> None:
            while True:
                with cond:
                    while not queue and open_state["open"]:
                        cond.wait()
                    if not queue:
                        return
                    req = queue.popleft()
                    cond.notify_all()  # reader may be blocked on the cap
                try:
                    self._send_reply(conn, req, self._dispatch(req), send_lock)
                except OSError:
                    break  # connection gone; stop draining
            with cond:
                open_state["open"] = False  # unwedge a reader at the cap
                cond.notify_all()

        workers = [
            threading.Thread(
                target=worker, name="repro-store-pipeline", daemon=True
            )
            for _ in range(PIPELINE_WORKERS)
        ]
        for thread in workers:
            thread.start()
        try:
            while True:
                try:
                    req, _flags = self._read_request(conn)
                except TruncatedFrameError:
                    return
                except ProtocolError as exc:
                    self._send_error(conn, None, exc, send_lock)
                    return
                with cond:
                    while len(queue) >= READAHEAD and open_state["open"]:
                        cond.wait()
                    queue.append(req)
                    cond.notify_all()
        finally:
            with cond:
                open_state["open"] = False
                cond.notify_all()
            for thread in workers:
                thread.join()

    def _dispatch(self, request: Dict[str, Any]) -> Tuple[MessageType, dict]:
        req_id = request.get("id")
        op = request.get("op")
        handler = self._ops.get(op)
        if handler is None:
            with self._lock:
                key = str(op)
                self._op_errors[key] = self._op_errors.get(key, 0) + 1
            return self._error(req_id, "UnknownOperationError", f"unknown op {op!r}")
        args = request.get("args") or {}
        session = request.get("session")
        seq = request.get("seq")
        # Server spans are recorded manually after the fact (see
        # Tracer.record_completed): the dispatch already brackets the work
        # with clock readings, so the traced path adds two short lock
        # acquisitions per RPC instead of two Span context managers.
        tracer = self.telemetry.tracer
        traced = tracer.enabled
        # absent-field compatibility: pre-tracing clients send no "trace"
        # key, and a malformed one decodes to None — either way the RPC
        # proceeds, its server span simply unparented.
        rctx = decode_trace_context(request.get("trace")) if traced else None
        start = self._clock()
        t_start = tracer.now() if traced else 0.0
        with self._lock:
            self._inflight += 1
            self._op_requests[op] = self._op_requests.get(op, 0) + 1
        ok = False
        replayed = False
        error_name: Optional[str] = None
        child = ""
        s_start = s_end = 0.0
        try:
            if traced:
                s_start = tracer.now()
            try:
                with self._lock:
                    if seq is not None and session is not None:
                        applied = self._applied.setdefault(session, {})
                        if seq in applied:
                            # retried write: replay remembered result
                            child = "dedup_replay"
                            result = applied[seq]
                            replayed = True
                        else:
                            child = "store." + op
                            result = handler(args)
                            applied[seq] = result
                            while len(applied) > DEDUP_WINDOW:
                                applied.pop(next(iter(applied)))
                    else:
                        child = "store." + op
                        result = handler(args)
            finally:
                if traced:
                    s_end = tracer.now()
        except (TesseractError, KeyError, ValueError, TypeError) as exc:
            error_name = type(exc).__name__
            return self._error(req_id, error_name, str(exc))
        else:
            ok = True
            return MessageType.RESPONSE, {"id": req_id, "result": result}
        finally:
            elapsed = self._clock() - start
            if traced:
                self._record_rpc_spans(
                    tracer,
                    op,
                    rctx,
                    t_start,
                    s_start,
                    s_end,
                    child,
                    seq if replayed else None,
                    error_name,
                )
            with self._lock:
                self._inflight -= 1
                if not ok:
                    self._op_errors[op] = self._op_errors.get(op, 0) + 1
                if replayed:
                    self._dedup_replays += 1
                samples = self._op_latencies.setdefault(op, [])
                if len(samples) < LATENCY_SAMPLE_CAP:
                    samples.append(elapsed)

    def _record_rpc_spans(
        self,
        tracer: Any,
        op: str,
        rctx: Optional[Tuple[str, int, str, int, int]],
        t_start: float,
        s_start: float,
        s_end: float,
        child: str,
        replay_seq: Optional[int],
        error_name: Optional[str],
    ) -> None:
        """Record the rpc.server span and its store/replay child post-hoc.

        The server span is a *remote-parented root*: its logical parent is
        the client's rpc.call span in another process, carried in ``rctx``
        and recorded as ``trace_id``/``remote_parent`` attrs for the merge
        tool; locally it parents nowhere (requests without a usable trace
        context stay plain roots).  ``child`` is empty only when dispatch
        failed before reaching the store (e.g. an unhashable session id),
        in which case just the server span is recorded.  The store child's
        interval includes store-lock serialization — waiting for the store
        *is* part of serving the request.
        """
        t_end = tracer.now()
        if rctx is not None:
            attrs: Dict[str, Any] = {
                "op": op,
                "attempt": rctx[4],
                "trace_id": rctx[0],
                "remote_parent": {"node": rctx[2], "span_id": rctx[1]},
            }
        else:
            attrs = {"op": op, "attempt": 0}
        if error_name is not None:
            attrs["error"] = error_name
        first = tracer.reserve_ids(2)
        spans = [(first, None, "rpc.server", t_start, t_end, attrs)]
        if child:
            child_attrs: Dict[str, Any] = {}
            if child == "dedup_replay":
                child_attrs = {"op": op, "seq": replay_seq}
            spans.append((first + 1, first, child, s_start, s_end, child_attrs))
        tracer.record_completed(spans)

    def _error(
        self, req_id: Any, remote_type: str, message: str
    ) -> Tuple[MessageType, dict]:
        return MessageType.ERROR, {
            "id": req_id,
            "error": {"type": remote_type, "message": message},
        }

    def _encode_reply(
        self, msg_type: MessageType, body: dict, request: Dict[str, Any]
    ) -> bytes:
        """Frame one reply, binary when the request opted in (``accept``).

        Record-map results (:class:`~repro.net.wire.RecordsPayload`) take
        the binary fast path only for requests that declared ``"accept":
        "b"`` — which clients only do after the hello negotiation — and
        fall back to canonical JSON both for everyone else and for the
        rare record the codec cannot represent, so the same request never
        hard-fails on encoding.
        """
        result = body.get("result")
        if isinstance(result, RecordsPayload):
            if request.get("accept") == "b":
                try:
                    return encode_frame(
                        msg_type,
                        encode_binary_payload(body, kind="recs", path=("result",)),
                        flags=FLAG_BINARY,
                    )
                except ValueError:
                    pass  # unrepresentable record: fall back to JSON
            body = dict(body)
            body["result"] = result.to_json()
        return encode_frame(msg_type, encode_payload(body))

    def _send_reply(
        self,
        conn: socket.socket,
        request: Dict[str, Any],
        outcome: Tuple[MessageType, dict],
        send_lock: Optional[threading.Lock] = None,
    ) -> None:
        frame = self._encode_reply(outcome[0], outcome[1], request)
        if send_lock is None:
            conn.sendall(frame)
        else:
            with send_lock:
                conn.sendall(frame)

    def _send_error(
        self,
        conn: socket.socket,
        req_id: Any,
        exc: NetError,
        send_lock: Optional[threading.Lock] = None,
    ) -> None:
        try:
            self._send_reply(
                conn, {}, self._error(req_id, type(exc).__name__, str(exc)), send_lock
            )
        except OSError:
            pass

    # -- ops accounting ------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        """One lock-consistent copy of the server's ops accounting.

        The shape is JSON-safe (this is also what the ``/statz`` telemetry
        endpoint returns, and what ``repro top`` renders).
        """
        with self._lock:
            return {
                "requests": dict(self._op_requests),
                "errors": dict(self._op_errors),
                "dedup_replays": self._dedup_replays,
                "pipelined_conns": self._pipelined_conns,
                "inflight": self._inflight,
                "sessions": len(self._applied),
                "latencies_s": {
                    op: list(samples)
                    for op, samples in self._op_latencies.items()
                },
            }

    def collect_registry(self) -> MetricsRegistry:
        """A fresh registry projecting the server + store state at scrape time.

        Built per scrape (never cached) so each ``/metrics`` response is a
        self-consistent snapshot; request/error counts are true counters,
        latencies feed per-op histograms, and the served store's own
        ``repro_store_*`` / cache gauges ride along.
        """
        snap = self.stats_snapshot()
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_server_requests_total", "RPC requests dispatched, by op"
        )
        for op in sorted(snap["requests"]):
            requests.labels(op=op).set_total(snap["requests"][op])
        errors = registry.counter(
            "repro_server_errors_total", "RPC requests answered with an error, by op"
        )
        for op in sorted(snap["errors"]):
            errors.labels(op=op).set_total(snap["errors"][op])
        registry.counter(
            "repro_server_dedup_replays_total",
            "retried writes answered from the dedup window (not re-executed)",
        ).set_total(snap["dedup_replays"])
        registry.counter(
            "repro_server_pipelined_connections_total",
            "connections upgraded to read-ahead pipelined dispatch",
        ).set_total(snap["pipelined_conns"])
        registry.gauge(
            "repro_server_inflight_requests", "requests currently being served"
        ).set(snap["inflight"])
        registry.gauge(
            "repro_server_sessions", "client sessions with dedup state"
        ).set(snap["sessions"])
        latency = registry.histogram(
            "repro_server_request_seconds",
            "server-side request handling latency, by op (capped sample)",
            buckets=NET_LATENCY_BUCKETS,
        )
        for op in sorted(snap["latencies_s"]):
            child = latency.labels(op=op)
            for sample in snap["latencies_s"][op]:
                child.observe(sample)
        with self._lock:  # store reads are serialized like any dispatch
            store_to_registry(registry, self.store)
        return registry

    # -- the operation table -----------------------------------------------

    def _build_ops(self) -> Dict[str, Callable[[dict], Any]]:
        store = self.store
        ops: Dict[str, Callable[[dict], Any]] = {
            "ping": lambda a: {},
            "hello": self._op_hello,
            # record transfer (the fetch boundary)
            "get_record": lambda a: RecordsPayload(
                {a["v"]: store.get_record(a["v"])}, single=True
            ),
            "multi_get": self._op_multi_get,
            "put_record": self._write(
                lambda a: store.put_record(
                    a["v"], _require_record(a["record"])
                )
            ),
            "list_vertices": lambda a: sorted(store.vertices()),
            "has_vertex": lambda a: store.has_vertex(a["v"]),
            "num_vertices": lambda a: store.num_vertices(),
            "vertex_label_at": lambda a: store.vertex_label_at(a["v"], a["ts"]),
            "latest_ts": lambda a: store.latest_timestamp,
            "updated_keys_in": lambda a: encode_updated_keys(
                store.updated_keys_in(a["ts"])
            ),
            # write path (ingress)
            "add_edge": self._write(
                lambda a: store.add_edge(
                    a["u"],
                    a["v"],
                    a["ts"],
                    label=a.get("label"),
                    direction=a.get("direction"),
                )
            ),
            "delete_edge": self._write(
                lambda a: store.delete_edge(a["u"], a["v"], a["ts"])
            ),
            "set_vertex_label": self._write(
                lambda a: store.set_vertex_label(a["v"], a["ts"], a.get("label"))
            ),
            "ensure_vertex": self._write(lambda a: store.ensure_vertex(a["v"])),
            "put_edges": self._write(self._op_put_edges),
            "set_latest_ts": self._write(
                lambda a: store.set_latest_timestamp(a["ts"])
            ),
            # maintenance
            "reclaim": lambda a: encode_reclaim_stats(store.reclaim(a["horizon"])),
            "window_completed": self._op_window_completed,
            "store_stats": lambda a: store.store_stats(),
        }
        return ops

    def _op_hello(self, args: dict) -> dict:
        session = args.get("session")
        if session is None:
            with self._lock:  # re-entrant under dispatch
                self._next_session += 1
                session = self._next_session
        return {
            "session": session,
            "kind": self.store.kind,
            "num_shards": self.store.shards.num_shards,
            "latest_ts": self.store.latest_timestamp,
            "max_batch": self.max_batch,
            "features": list(SERVER_FEATURES),
        }

    def _op_multi_get(self, args: dict) -> RecordsPayload:
        vs = args["vs"]
        if len(vs) > self.max_batch:
            raise ValueError(
                f"multi_get batch of {len(vs)} exceeds limit {self.max_batch}"
            )
        return RecordsPayload({v: self.store.get_record(v) for v in vs})

    def _op_put_edges(self, args: dict) -> None:
        """Apply one coalesced window of edge updates at a shared ``ts``.

        Updates arrive either as binary-decoded
        :class:`~repro.types.EdgeUpdate` objects or as the JSON quint
        lists of :func:`~repro.net.wire.encode_edge_update`; they apply
        in payload order, exactly as the per-op loop would have.
        """
        updates = args["updates"]
        if len(updates) > self.max_batch:
            raise ValueError(
                f"put_edges batch of {len(updates)} exceeds limit {self.max_batch}"
            )
        ts = args["ts"]
        for item in updates:
            upd = item if isinstance(item, EdgeUpdate) else decode_edge_update(item)
            if upd.added:
                self.store.add_edge(
                    upd.u, upd.v, ts, label=upd.label, direction=upd.direction
                )
            else:
                self.store.delete_edge(upd.u, upd.v, ts)

    def _op_window_completed(self, args: dict) -> dict:
        self.store.window_completed(args["ts"])
        return {"latest_ts": self.store.latest_timestamp}

    def _write(self, apply: Callable[[dict], None]) -> Callable[[dict], dict]:
        """Wrap a mutation: apply, then return the server's write clock.

        Every write response carries ``latest_ts`` so the client tracks
        the store clock without a per-read RPC.
        """

        def handler(args: dict) -> dict:
            apply(args)
            return {"latest_ts": self.store.latest_timestamp}

        return handler


def _require_record(data: Optional[dict]):
    from repro.net.wire import decode_record

    record = decode_record(data)
    if record is None:
        raise ValueError("put_record requires a record body")
    return record

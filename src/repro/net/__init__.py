"""Real network transport for the disaggregated store (paper §4.1, §7).

Layered bottom-up: :mod:`repro.net.frames` (length-prefixed framing),
:mod:`repro.net.wire` (canonical-JSON payloads and record codecs),
:mod:`repro.net.rpc` (deadlines, retries, pooling),
:mod:`repro.net.server` / :mod:`repro.net.client` (a
:class:`~repro.store.api.GraphStore` served over TCP and consumed through
the same protocol).  This package is the only place in the tree allowed
to touch raw sockets (repro-lint RL007).
"""

from repro.net.client import NetStoreClient
from repro.net.errors import (
    ApplicationError,
    NetError,
    ProtocolError,
    TransportError,
)
from repro.net.frames import (
    FLAG_BINARY,
    FLAG_PIPELINE,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    MessageType,
)
from repro.net.rpc import DEFAULT_WINDOW, NetLog, RetryPolicy, RpcClient, RpcFuture
from repro.net.server import StoreServer
from repro.net.wire import RecordsPayload, split_address

__all__ = [
    "ApplicationError",
    "DEFAULT_WINDOW",
    "FLAG_BINARY",
    "FLAG_PIPELINE",
    "MAX_PAYLOAD",
    "MessageType",
    "NetError",
    "NetLog",
    "NetStoreClient",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecordsPayload",
    "RetryPolicy",
    "RpcClient",
    "RpcFuture",
    "StoreServer",
    "TransportError",
    "split_address",
]

"""Real network transport for the disaggregated store (paper §4.1, §7).

Layered bottom-up: :mod:`repro.net.frames` (length-prefixed framing),
:mod:`repro.net.wire` (canonical-JSON payloads and record codecs),
:mod:`repro.net.rpc` (deadlines, retries, pooling),
:mod:`repro.net.server` / :mod:`repro.net.client` (a
:class:`~repro.store.api.GraphStore` served over TCP and consumed through
the same protocol).  This package is the only place in the tree allowed
to touch raw sockets (repro-lint RL007).
"""

from repro.net.client import NetStoreClient
from repro.net.errors import (
    ApplicationError,
    NetError,
    ProtocolError,
    TransportError,
)
from repro.net.frames import MAX_PAYLOAD, PROTOCOL_VERSION, MessageType
from repro.net.rpc import NetLog, RetryPolicy, RpcClient
from repro.net.server import StoreServer
from repro.net.wire import split_address

__all__ = [
    "ApplicationError",
    "MAX_PAYLOAD",
    "MessageType",
    "NetError",
    "NetLog",
    "NetStoreClient",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RetryPolicy",
    "RpcClient",
    "StoreServer",
    "TransportError",
    "split_address",
]

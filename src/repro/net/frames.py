"""Length-prefixed frames: the lowest layer of the wire protocol.

Everything the client and server exchange is a **frame**::

    offset  size  field
    0       2     magic  b"TS"  (Tesseract Store)
    2       1     protocol version (PROTOCOL_VERSION)
    3       1     flags (high bits) | message type (low bits)
    4       4     payload length, unsigned big-endian
    8       n     payload bytes

The type byte carries two **flag bits** in its high half:
:data:`FLAG_BINARY` (the payload uses the binary record codec of
:mod:`repro.net.wire` instead of canonical JSON) and
:data:`FLAG_PIPELINE` (the sender interleaves requests on this
connection and accepts out-of-order responses).  Both are negotiated
via the hello ``features`` list before ever appearing on the wire, so
the flag bits ride inside protocol version 1 without breaking old
peers: a peer that never advertised the feature never receives the
flag.  Unknown flag bits make the type byte decode to an unknown
message type, which is rejected the same way an unknown type is.

The header is fixed-size and self-describing, so a reader can always
decide — before touching the payload — whether it speaks this frame:
wrong magic, unknown version, unknown type, and oversized payloads each
raise their own :mod:`repro.net.errors` subtype.  Payload length may be
zero (e.g. an empty-body response); the hard ceiling
:data:`MAX_PAYLOAD` bounds what a malicious or confused peer can make us
buffer.

Framing is deliberately dumb: it neither inspects nor transforms payload
bytes.  Message *content* encoding lives one layer up in
:mod:`repro.net.wire`.
"""

from __future__ import annotations

import enum
import struct
from typing import Callable, Tuple

from repro.net.errors import (
    BadMagicError,
    FrameTooLargeError,
    TruncatedFrameError,
    UnknownMessageTypeError,
    VersionMismatchError,
)

MAGIC = b"TS"

#: bump on any incompatible change to framing or payload encoding
PROTOCOL_VERSION = 1

#: hard ceiling on a single frame's payload (bytes)
MAX_PAYLOAD = 8 * 1024 * 1024

_HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = _HEADER.size


class MessageType(enum.IntEnum):
    """What a frame's payload means."""

    REQUEST = 1
    RESPONSE = 2
    ERROR = 3


_KNOWN_TYPES = {int(t) for t in MessageType}

#: the frame payload is binary-codec encoded (see repro.net.wire);
#: negotiated via the hello ``features`` entry ``"bin"``
FLAG_BINARY = 0x80

#: the sender pipelines requests on this connection and accepts
#: out-of-order responses; negotiated via the ``features`` entry ``"pipe"``
FLAG_PIPELINE = 0x40

FLAG_MASK = FLAG_BINARY | FLAG_PIPELINE


def encode_frame(
    msg_type: MessageType,
    payload: bytes,
    *,
    flags: int = 0,
    version: int = PROTOCOL_VERSION,
    max_payload: int = MAX_PAYLOAD,
) -> bytes:
    """Serialize one frame; raises :class:`FrameTooLargeError` when over."""
    if len(payload) > max_payload:
        raise FrameTooLargeError(len(payload), max_payload)
    return _HEADER.pack(
        MAGIC, version, int(msg_type) | (flags & FLAG_MASK), len(payload)
    ) + payload


def decode_header(
    header: bytes, *, max_payload: int = MAX_PAYLOAD
) -> Tuple[MessageType, int, int]:
    """Validate a raw header; returns ``(msg_type, flags, payload_length)``."""
    if len(header) != HEADER_SIZE:
        raise TruncatedFrameError(
            f"frame header truncated at {len(header)}/{HEADER_SIZE} bytes"
        )
    magic, version, type_byte, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise BadMagicError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatchError(version, PROTOCOL_VERSION)
    flags = type_byte & FLAG_MASK
    msg_type = type_byte & ~FLAG_MASK
    if msg_type not in _KNOWN_TYPES:
        raise UnknownMessageTypeError(type_byte)
    if length > max_payload:
        raise FrameTooLargeError(length, max_payload)
    return MessageType(msg_type), flags, length


def read_frame(
    read: Callable[[int], bytes], *, max_payload: int = MAX_PAYLOAD
) -> Tuple[MessageType, int, bytes]:
    """Read one complete frame via ``read(n)`` (a ``recv``-like callable).

    Returns ``(msg_type, flags, payload)``.  ``read`` may return fewer
    bytes than requested (socket semantics) and must return ``b""`` at
    EOF.  EOF on the very first byte raises :class:`TruncatedFrameError`
    with ``clean_eof=True`` set on the exception, so callers can tell an
    orderly peer close from a frame cut off mid-flight.
    """
    header = _read_exact(read, HEADER_SIZE, what="frame header")
    msg_type, flags, length = decode_header(header, max_payload=max_payload)
    payload = _read_exact(read, length, what="frame payload") if length else b""
    return msg_type, flags, payload


def _read_exact(read: Callable[[int], bytes], n: int, *, what: str) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = read(n - got)
        if not chunk:
            exc = TruncatedFrameError(
                f"connection closed mid-{what} at {got}/{n} bytes"
            )
            exc.clean_eof = got == 0 and what == "frame header"
            raise exc
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)

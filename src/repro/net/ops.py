"""Live ops surface for a running :class:`~repro.net.server.StoreServer`.

A :class:`TelemetryServer` is a tiny raw-socket HTTP endpoint (this module
lives in :mod:`repro.net`, the one package allowed to touch sockets —
repro-lint RL007) bound next to a store server.  It serves three paths:

* ``GET /metrics`` — Prometheus text exposition of the store server's
  scrape-time registry (:meth:`StoreServer.collect_registry`): per-method
  request/error counters, per-method latency histograms, the in-flight
  gauge, session/dedup stats, and the served store's own gauges;
* ``GET /healthz`` — a small JSON liveness document (status, store kind,
  in-flight count);
* ``GET /statz``   — the raw :meth:`StoreServer.stats_snapshot` JSON that
  ``repro top`` renders.

The protocol support is deliberately minimal: one request per connection,
``HTTP/1.0``-style ``Connection: close`` semantics, GET only.  That is
all a scraper, ``curl``, or ``repro top`` needs, and it keeps the surface
dependency-free.

:func:`http_get` is the matching client (used by ``repro top`` and the
tests), and :func:`render_top` turns a ``/statz`` document into the
hot-methods text view.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.net.errors import ConnectError, ConnectionLostError, ProtocolError
from repro.net.server import StoreServer
from repro.net.wire import split_address

#: largest request head we will read before giving up on a client
MAX_REQUEST_BYTES = 8192


class TelemetryServer:
    """Serve ``/metrics``, ``/healthz``, and ``/statz`` for a store server.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  :meth:`start` serves from a daemon thread — the
    endpoint must keep answering while the store server is under RPC
    load, which it does trivially because every scrape builds its
    snapshot under the same lock discipline as a dispatch.
    """

    def __init__(
        self,
        server: StoreServer,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = server
        self._lock = threading.Lock()
        self._conns: List[socket.socket] = []
        self._closed = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._sock.getsockname()[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Accept connections from a daemon thread; returns self."""
        threading.Thread(
            target=self.serve_forever, name="repro-telemetry", daemon=True
        ).start()
        return self

    def serve_forever(self) -> None:
        """Accept-and-answer loop; returns when :meth:`close` is called."""
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listening socket closed by close()
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.append(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def close(self) -> None:
        """Stop accepting and release the port."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns, self._conns = self._conns, []
        self._sock.close()
        for conn in conns:
            conn.close()

    # -- request handling --------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            path = _read_request_path(conn)
            if path is None:
                _respond(conn, 400, "text/plain", "bad request\n")
            else:
                self._route(conn, path)
        except OSError:
            pass  # peer went away mid-response; nothing to salvage
        finally:
            conn.close()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _route(self, conn: socket.socket, path: str) -> None:
        if path == "/metrics":
            body = self.server.collect_registry().dump("prom")
            _respond(conn, 200, "text/plain; version=0.0.4", body)
        elif path == "/healthz":
            snap = self.server.stats_snapshot()
            body = json.dumps(
                {
                    "status": "ok",
                    "kind": self.server.store.kind,
                    "inflight": snap["inflight"],
                    "sessions": snap["sessions"],
                },
                sort_keys=True,
            )
            _respond(conn, 200, "application/json", body + "\n")
        elif path == "/statz":
            body = json.dumps(self.server.stats_snapshot(), sort_keys=True)
            _respond(conn, 200, "application/json", body + "\n")
        else:
            _respond(conn, 404, "text/plain", f"no such path {path}\n")


def _read_request_path(conn: socket.socket) -> Optional[str]:
    """Read one HTTP request head and return its GET path (None = bad)."""
    data = b""
    while b"\r\n\r\n" not in data and b"\n\n" not in data:
        if len(data) > MAX_REQUEST_BYTES:
            return None
        chunk = conn.recv(4096)
        if not chunk:
            return None
        data += chunk
    request_line = data.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2 or parts[0] != "GET":
        return None
    return parts[1].split("?", 1)[0]


def _respond(
    conn: socket.socket, status: int, content_type: str, body: str
) -> None:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "OK")
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    conn.sendall(head.encode("ascii") + payload)


# -- the matching client -----------------------------------------------------


def http_get(addr: str, path: str, timeout: float = 5.0) -> Tuple[int, str]:
    """Fetch ``path`` from a telemetry endpoint; returns ``(status, body)``.

    ``addr`` is ``host:port``.  Transport failures raise the usual
    :mod:`repro.net` taxonomy (:class:`ConnectError` on dial,
    :class:`ConnectionLostError` mid-stream); a response that is not HTTP
    raises :class:`ProtocolError`.
    """
    host, port = split_address(addr)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ConnectError(f"cannot connect to {addr}: {exc}") from None
    try:
        try:
            request = f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n"
            sock.sendall(request.encode("ascii"))
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        except (TimeoutError, socket.timeout):
            raise ConnectionLostError(f"{addr}{path}: response timed out") from None
        except OSError as exc:
            raise ConnectionLostError(f"{addr}{path}: {exc}") from None
    finally:
        sock.close()
    head, sep, body = data.partition(b"\r\n\r\n")
    if not sep:
        head, sep, body = data.partition(b"\n\n")
    status_line = head.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
    parts = status_line.decode("latin-1", "replace").split()
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(f"{addr}{path}: not an HTTP response")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(f"{addr}{path}: bad status {parts[1]!r}") from None
    return status, body.decode("utf-8", "replace")


# -- 'repro top' rendering ---------------------------------------------------


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(q * (len(ordered) - 1) + 0.5)))
    return ordered[index]


def render_top(stats: Dict[str, Any], limit: int = 10) -> str:
    """The hot-methods text view of one ``/statz`` snapshot.

    Methods are ranked by request count; latency columns come from the
    server's capped per-op reservoir, so they describe recent behaviour
    rather than an exact lifetime distribution.
    """
    requests: Dict[str, int] = stats.get("requests", {})
    errors: Dict[str, int] = stats.get("errors", {})
    latencies: Dict[str, List[float]] = stats.get("latencies_s", {})
    total = sum(requests.values())
    lines = [
        f"inflight={stats.get('inflight', 0)} sessions={stats.get('sessions', 0)} "
        f"pipelined={stats.get('pipelined_conns', 0)} "
        f"dedup_replays={stats.get('dedup_replays', 0)} requests={total}",
        f"{'op':<18}{'reqs':>8}{'errs':>7}{'share':>8}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'max ms':>9}",
    ]
    ranked = sorted(requests.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    for op, count in ranked:
        samples = latencies.get(op, [])
        share = count / total if total else 0.0
        lines.append(
            f"{op:<18}{count:>8}{errors.get(op, 0):>7}{share:>7.1%}"
            f"{_percentile(samples, 0.50) * 1e3:>9.2f}"
            f"{_percentile(samples, 0.95) * 1e3:>9.2f}"
            f"{(max(samples) if samples else 0.0) * 1e3:>9.2f}"
        )
    leftover = len(requests) - len(ranked)
    if leftover > 0:
        lines.append(f"... {leftover} more op(s) not shown")
    return "\n".join(lines)

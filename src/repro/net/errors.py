"""The network layer's structured error taxonomy.

Kudu-style comms discipline starts with being precise about *what failed*:
a fault of the **transport** (the bytes never made it, or stopped making
it) is retryable because the request may simply be resent, while a fault
of the **application** (the server executed the request and said no) is
not — resending would re-execute a rejected operation.  Everything the
:mod:`repro.net` stack raises falls into exactly one of these families:

``TransportError``
    The connection failed before a complete response arrived: refused or
    reset connections, sockets closed mid-frame
    (:class:`TruncatedFrameError`), and per-call deadlines
    (:class:`DeadlineExceeded`).  The RPC core retries these with jittered
    exponential backoff, bounded by the call deadline and the retry
    policy's attempt budget (:class:`RetriesExhausted` wraps the final
    failure).

``ProtocolError``
    The bytes arrived but do not speak our protocol: a bad frame magic,
    an unknown frame type, a protocol-version mismatch, an oversized
    frame, or an undecodable payload.  Never retried — the peer is
    confused, not unlucky.

``ApplicationError``
    The server executed the request and raised.  Carries the remote
    exception's type name and message; :func:`raise_application_error`
    re-raises well-known library exceptions (``InvalidUpdateError`` et
    al.) as their local types so callers keep their existing ``except``
    clauses across the wire.
"""

from __future__ import annotations

from repro.errors import TesseractError


class NetError(TesseractError):
    """Base class for every failure raised by the network layer."""


class TransportError(NetError):
    """The transport failed before a complete response arrived (retryable)."""


class ConnectError(TransportError):
    """A TCP connection to the peer could not be established."""


class ConnectionLostError(TransportError):
    """The peer closed or reset the connection mid-exchange."""


class TruncatedFrameError(TransportError):
    """The stream ended in the middle of a frame header or payload."""


class DeadlineExceeded(TransportError):
    """The per-call deadline expired before a response arrived."""


class RetriesExhausted(TransportError):
    """Every retry attempt failed; wraps the last transport fault."""

    def __init__(self, attempts: int, last: TransportError) -> None:
        super().__init__(
            f"RPC failed after {attempts} attempt(s): {last}"
        )
        self.attempts = attempts
        self.last = last


class ProtocolError(NetError):
    """The peer sent bytes that violate the framing protocol (fatal)."""


class BadMagicError(ProtocolError):
    """A frame did not start with the protocol magic bytes."""


class VersionMismatchError(ProtocolError):
    """A frame carried an unsupported protocol version."""

    def __init__(self, got: int, expected: int) -> None:
        super().__init__(
            f"protocol version mismatch: peer speaks {got}, we speak {expected}"
        )
        self.got = got
        self.expected = expected


class UnknownMessageTypeError(ProtocolError):
    """A frame carried a message type this endpoint does not know."""

    def __init__(self, msg_type: int) -> None:
        super().__init__(f"unknown frame message type {msg_type}")
        self.msg_type = msg_type


class FrameTooLargeError(ProtocolError):
    """A frame declared a payload larger than the protocol maximum."""

    def __init__(self, size: int, limit: int) -> None:
        super().__init__(f"frame payload of {size} bytes exceeds limit {limit}")
        self.size = size
        self.limit = limit


class ApplicationError(NetError):
    """The server executed the request and raised (never retried)."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


def raise_application_error(remote_type: str, message: str) -> None:
    """Re-raise a remote fault, mapped back to a local exception type.

    Exceptions from :mod:`repro.errors` cross the wire by class name; any
    name we cannot map stays a generic :class:`ApplicationError` (still an
    application-family fault, so it is never retried).
    """
    import repro.errors as _errors

    cls = getattr(_errors, remote_type, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, TesseractError)
        and cls is not TesseractError
    ):
        try:
            exc = cls(message)
        except TypeError:
            # constructor wants structured arguments we did not ship
            exc = None
        if exc is not None:
            raise exc
    raise ApplicationError(remote_type, message)

"""The ingress node (paper sections 4.1, 5.1).

The ingress node sanitizes incoming graph updates, assigns timestamps in
increasing order, applies each window of updates atomically to the
multiversioned graph store, and inserts the resulting edge updates into the
work queue.  Timestamp assignment is window-based: ``window_size`` updates
share one timestamp (the paper's default window is 100K updates; snapshots
get increasing integer timestamps, section 6.1).

Update translation follows section 4.1: vertex deletions become deletions of
all incident edges; vertex additions create the (isolated) vertex; label
modifications delete the associated edges and re-add them with the new label
in the *following* window, so each window stays a consistent atomic snapshot.

Sanitization drops no-op updates (adding an edge that exists, deleting one
that does not) and collapses add+delete of the same edge within one window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvalidUpdateError
from repro.store.api import GraphStore, ReclaimStats
from repro.streaming.queue import WorkQueue
from repro.types import (
    EdgeKey,
    EdgeUpdate,
    Label,
    Timestamp,
    Update,
    UpdateKind,
    edge_key,
)


@dataclass
class Window:
    """One atomically applied snapshot window."""

    timestamp: Timestamp
    updates: List[EdgeUpdate] = field(default_factory=list)


@dataclass
class _PendingOp:
    """Net effect of updates to one edge within the open window."""

    added: bool
    label: Label = None
    direction: Optional[str] = None


class IngressNode:
    """Sanitizes updates, assigns timestamps, applies windows, feeds the queue."""

    def __init__(
        self,
        store: GraphStore,
        queue: Optional[WorkQueue] = None,
        window_size: int = 100,
        window_seconds: Optional[float] = None,
        clock=time.monotonic,
        gc_enabled: bool = False,
        telemetry=None,
    ) -> None:
        from repro.telemetry import SIZE_BUCKETS, ensure

        if window_size < 1:
            raise ValueError("window_size must be positive")
        if window_seconds is not None and window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        telemetry = ensure(telemetry)
        self._telemetry = telemetry
        registry = telemetry.registry
        self._c_submitted = registry.counter(
            "repro_ingress_updates_submitted_total",
            "raw updates submitted to the ingress node",
        )
        self._c_windows = registry.counter(
            "repro_ingress_windows_total", "snapshot windows applied"
        )
        self._h_window_updates = registry.histogram(
            "repro_ingress_window_updates",
            "edge updates per applied window",
            buckets=SIZE_BUCKETS,
        )
        self.store = store
        self.queue = queue
        self.window_size = window_size
        #: optional time-interval windowing (paper §5.1: windows "based on
        #: time intervals or number of updates"); whichever limit is hit
        #: first closes the window
        self.window_seconds = window_seconds
        self._clock = clock
        self._window_opened_at: Optional[float] = None
        self.gc_enabled = gc_enabled
        self._next_ts: Timestamp = store.latest_timestamp + 1
        self._pending: Dict[EdgeKey, _PendingOp] = {}
        #: raw updates deferred to the next window (label re-adds, conflicts)
        self._deferred: List[Update] = []
        self._vertex_labels: List[Tuple[int, Label]] = []
        self.windows_applied = 0
        self.updates_dropped = 0
        self.updates_accepted = 0
        self.gc_reclaimed = 0
        #: full stats of the most recent GC pass (None before the first)
        self.last_reclaim: Optional[ReclaimStats] = None

    # -- submission --------------------------------------------------------

    def submit(self, update: Update) -> None:
        """Sanitize one update into the open window; close it when full.

        A window closes when it reaches ``window_size`` updates or, with
        time-based windowing enabled, when ``window_seconds`` have elapsed
        since it opened.
        """
        if self._window_opened_at is None:
            self._window_opened_at = self._clock()
        self._c_submitted.inc()
        self._apply_to_pending(update)
        while len(self._pending) >= self.window_size:
            self._close_window()
        if (
            self.window_seconds is not None
            and self._pending
            and self._clock() - self._window_opened_at >= self.window_seconds
        ):
            self._close_window()

    def close_window(self) -> bool:
        """Explicitly close the open window, if any content is buffered.

        Returns whether a window was applied.  Gives data sources control
        over snapshot boundaries without waiting for the size limit.
        """
        if not (self._pending or self._deferred or self._vertex_labels):
            return False
        self._close_window()
        return True

    def submit_many(self, updates: Iterable[Update]) -> None:
        for update in updates:
            self.submit(update)

    def flush(self) -> None:
        """Close any open window and drain deferred updates."""
        while self._pending or self._deferred or self._vertex_labels:
            self._close_window()

    # -- sanitization ----------------------------------------------------

    def _edge_exists_now(self, key: EdgeKey) -> bool:
        """Whether the edge is alive as of the last applied window."""
        return self.store.edge_alive_at(key[0], key[1], self._next_ts - 1)

    def _apply_to_pending(self, update: Update) -> None:
        kind = update.kind
        if kind is UpdateKind.ADD_EDGE:
            from repro.types import normalize_direction

            self._pend_add(
                edge_key(update.src, update.dst),
                update.label,
                normalize_direction(update.src, update.dst, update.direction),
            )
        elif kind is UpdateKind.DELETE_EDGE:
            self._pend_delete(edge_key(update.src, update.dst))
        elif kind is UpdateKind.ADD_VERTEX:
            self.store.ensure_vertex(update.src)
            if update.label is not None:
                self._vertex_labels.append((update.src, update.label))
            self.updates_accepted += 1
        elif kind is UpdateKind.DELETE_VERTEX:
            self._pend_delete_vertex(update.src)
        elif kind is UpdateKind.SET_VERTEX_LABEL:
            self._pend_vertex_relabel(update.src, update.label)
        elif kind is UpdateKind.SET_EDGE_LABEL:
            self._pend_edge_relabel(
                edge_key(update.src, update.dst), update.label
            )
        else:  # pragma: no cover - enum is closed
            raise InvalidUpdateError(f"unknown update kind {kind!r}")

    def _deferred_index(self, key: EdgeKey) -> int:
        """Index of a deferred re-add for ``key``, or -1.

        Only edge additions are ever deferred, so a hit means the edge will
        be re-created in the next window unless a later delete cancels it.
        """
        for i, update in enumerate(self._deferred):
            if (
                update.kind is UpdateKind.ADD_EDGE
                and edge_key(update.src, update.dst) == key
            ):
                return i
        return -1

    def _pend_add(
        self, key: EdgeKey, label: Label, direction: Optional[str] = None
    ) -> None:
        if self._deferred_index(key) >= 0:
            self.updates_dropped += 1  # already being re-added next window
            return
        pending = self._pending.get(key)
        if pending is None:
            if self._edge_exists_now(key):
                self.updates_dropped += 1  # duplicate add
            else:
                self._pending[key] = _PendingOp(
                    added=True, label=label, direction=direction
                )
                self.updates_accepted += 1
        elif pending.added:
            self.updates_dropped += 1  # duplicate add within window
        else:
            # delete followed by add within one window: the delete stays in
            # this window, the add is deferred to the next so each window
            # remains a consistent snapshot.
            self._deferred.append(Update.add_edge(key[0], key[1], label))
            self.updates_accepted += 1

    def _pend_delete(self, key: EdgeKey) -> None:
        deferred_i = self._deferred_index(key)
        if deferred_i >= 0:
            # The edge is scheduled for re-addition next window; cancelling
            # that re-add makes this delete a net no-op.
            del self._deferred[deferred_i]
            self.updates_dropped += 2
            self.updates_accepted -= 1
            return
        pending = self._pending.get(key)
        if pending is None:
            if self._edge_exists_now(key):
                self._pending[key] = _PendingOp(added=False)
                self.updates_accepted += 1
            else:
                self.updates_dropped += 1  # delete of missing edge
        elif pending.added:
            # add followed by delete within one window: net no-op.
            del self._pending[key]
            self.updates_dropped += 2
            self.updates_accepted -= 1
        else:
            self.updates_dropped += 1  # duplicate delete

    def _pend_delete_vertex(self, v: int) -> None:
        if not self.store.has_vertex(v):
            self.updates_dropped += 1
            return
        for nbr in self.store.neighbors_at(v, self._next_ts - 1):
            self._pend_delete(edge_key(v, nbr))

    def _pend_vertex_relabel(self, v: int, label: Label) -> None:
        """Relabel = delete incident edges now, re-add next window (§4.1).

        The label change and the deletion of every incident edge must land
        in one atomic window: otherwise a snapshot could pair the new label
        with edges whose matches were derived under the old label, and
        those changes would never be discovered (no update edge marks
        them).  The relabel therefore drains the open window and then
        closes two dedicated windows — deletes+label, then re-adds —
        ignoring the size limit.
        """
        self.store.ensure_vertex(v)
        if self._pending or self._vertex_labels or self._deferred:
            self._close_window(limit=False)
        self._vertex_labels.append((v, label))
        for nbr in self.store.neighbors_at(v, self._next_ts - 1):
            key = edge_key(v, nbr)
            old_label = self.store.edge_label_at(key[0], key[1], self._next_ts - 1)
            self._pend_delete(key)
            self._deferred.append(Update.add_edge(key[0], key[1], old_label))
        self._close_window(limit=False)  # label + all deletes, atomically
        if self._pending or self._deferred:
            self._close_window(limit=False)  # the re-adds

    def _pend_edge_relabel(self, key: EdgeKey, label: Label) -> None:
        deferred_i = self._deferred_index(key)
        if deferred_i >= 0:
            # The edge is being re-added next window; relabel that re-add.
            self._deferred[deferred_i] = Update.add_edge(key[0], key[1], label)
            return
        if not self._edge_exists_now(key) and key not in self._pending:
            self.updates_dropped += 1
            return
        self._pend_delete(key)
        self._deferred.append(Update.add_edge(key[0], key[1], label))

    # -- window application ----------------------------------------------

    def _close_window(self, limit: bool = True) -> Window:
        """Apply the open window atomically and enqueue its edge updates.

        With ``limit=False`` every pending operation is applied regardless
        of the window size (used to keep relabels atomic).  With telemetry
        enabled the application is wrapped in an ``ingress.window`` span
        and the window size lands in ``repro_ingress_window_updates``.
        """
        if not self._telemetry.enabled:
            return self._apply_window(limit)
        with self._telemetry.tracer.span("ingress.window") as span:
            window = self._apply_window(limit)
            span.set(ts=window.timestamp, updates=len(window.updates))
        self._c_windows.inc()
        self._h_window_updates.observe(len(window.updates))
        return window

    def _apply_window(self, limit: bool = True) -> Window:
        ts = self._next_ts
        window = Window(timestamp=ts)
        # Vertex labels take effect at this window's timestamp.
        for v, label in self._vertex_labels:
            self.store.set_vertex_label(v, ts, label)
        self._vertex_labels = []
        items = sorted(self._pending.items())
        cut = self.window_size if limit else len(items)
        overflow = items[cut:]
        for key, op in items[:cut]:
            u, v = key
            window.updates.append(
                EdgeUpdate(
                    u, v, added=op.added, label=op.label, direction=op.direction
                )
            )
        # One coalesced application: stores that batch over the wire
        # (NetStoreClient) ship the whole window in a few put_edges RPCs
        # instead of one add_edge/delete_edge round trip per update.
        self.store.apply_edge_updates(ts, window.updates)
        self._pending = dict(overflow)
        if self.queue is not None:
            for upd in window.updates:
                self.queue.append(ts, upd)
        self._next_ts += 1
        self.windows_applied += 1
        # Deferred updates (label re-adds, delete+add conflicts) seed the
        # next window.
        self._window_opened_at = self._clock()
        deferred, self._deferred = self._deferred, []
        for update in deferred:
            self._apply_to_pending(update)
        if self.gc_enabled and self.queue is not None:
            stats = self.store.reclaim(self.queue.low_watermark())
            self.gc_reclaimed += stats.reclaimed
            self.last_reclaim = stats
        return window

    # -- introspection -------------------------------------------------------

    @property
    def next_timestamp(self) -> Timestamp:
        return self._next_ts

    def pending_count(self) -> int:
        return len(self._pending)

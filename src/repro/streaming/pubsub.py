"""Publish-subscribe output platform (paper section 5.4).

Workers emit match deltas to a pub/sub system (Kafka in the paper) that
stores them durably and serves them to output-processing subscribers.
Two stream modes are supported (section 3.1):

* **unordered** — records are visible to subscribers immediately, giving
  lower latency for eventually-consistent consumers (e.g. keyword search);
* **ordered** — records are buffered and released in timestamp order as the
  low watermark advances, for consumers that cannot handle out-of-order
  matches (e.g. FSM support maintenance).

Publishing is idempotent per ``dedup_key``: redelivered work after a worker
crash publishes the same keys again and duplicates are dropped, giving the
exactly-once output semantics of section 5.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

from repro.errors import DataflowError
from repro.types import Timestamp

T = TypeVar("T")


@dataclass
class Subscription(Generic[T]):
    """A subscriber's cursor into a topic."""

    topic: "Topic[T]"
    position: int = 0

    def poll(self) -> Optional[T]:
        """Return the next visible record, or None when caught up."""
        records = self.topic.visible_records()
        if self.position >= len(records):
            return None
        record = records[self.position]
        self.position += 1
        return record

    def drain(self) -> List[T]:
        records = self.topic.visible_records()
        out = list(records[self.position :])
        self.position = len(records)
        return out


class Topic(Generic[T]):
    """A durable, optionally ordered stream of records."""

    def __init__(self, name: str, ordered: bool = False) -> None:
        self.name = name
        self.ordered = ordered
        self._visible: List[T] = []
        self._held: List[Tuple[Timestamp, int, T]] = []  # pending ordered records
        self._seq = 0
        self._watermark: Timestamp = 0
        self._seen_keys: set = set()
        self.duplicates_dropped = 0

    def publish(
        self,
        record: T,
        timestamp: Timestamp = 0,
        dedup_key: Optional[Hashable] = None,
    ) -> bool:
        """Publish a record; returns False if deduplicated away."""
        if dedup_key is not None:
            if dedup_key in self._seen_keys:
                self.duplicates_dropped += 1
                return False
            self._seen_keys.add(dedup_key)
        if self.ordered and timestamp > self._watermark:
            self._held.append((timestamp, self._seq, record))
            self._seq += 1
        else:
            self._visible.append(record)
        return True

    def advance_watermark(self, timestamp: Timestamp) -> int:
        """Release held records with ts <= ``timestamp``; returns count.

        The low watermark guarantees all updates with a timestamp lower or
        equal to the target have been emitted (section 5.4), so held records
        at or below it can be released in timestamp order.
        """
        if timestamp < self._watermark:
            raise DataflowError("watermark cannot move backwards")
        self._watermark = timestamp
        if not self._held:
            return 0
        ready = [h for h in self._held if h[0] <= timestamp]
        self._held = [h for h in self._held if h[0] > timestamp]
        ready.sort()
        self._visible.extend(record for _, _, record in ready)
        return len(ready)

    def visible_records(self) -> List[T]:
        return self._visible

    @property
    def watermark(self) -> Timestamp:
        return self._watermark

    def held_count(self) -> int:
        return len(self._held)

    def subscribe(self) -> Subscription[T]:
        return Subscription(self)

    def __len__(self) -> int:
        return len(self._visible)


class PubSub:
    """A namespace of topics."""

    def __init__(self) -> None:
        self._topics: Dict[str, Topic[Any]] = {}

    def topic(self, name: str, ordered: bool = False) -> Topic[Any]:
        """Get or create a topic; the ordered flag must stay consistent."""
        existing = self._topics.get(name)
        if existing is not None:
            if existing.ordered != ordered:
                raise DataflowError(
                    f"topic {name!r} already exists with ordered={existing.ordered}"
                )
            return existing
        topic: Topic[Any] = Topic(name, ordered=ordered)
        self._topics[name] = topic
        return topic

    def topics(self) -> List[str]:
        return sorted(self._topics)

"""Adaptive window sizing — tuning the §6.5.4 tradeoff automatically.

The paper picks a fixed 100K-update window as "a good compromise between
throughput and latency" after measuring the tradeoff by hand (section
6.5.4).  :class:`AdaptiveWindowController` automates that choice: given a
per-window latency budget, it observes each window's processing time and
resizes the next window multiplicatively — larger windows amortize
snapshot work (throughput), smaller windows bound latency.

The controller is deliberately simple (AIMD-flavored multiplicative
control with hysteresis) and fully deterministic given the observations,
so its behaviour is unit-testable without wall clocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class AdaptiveWindowController:
    """Chooses the next window size from observed window latencies."""

    #: per-window processing-latency budget, seconds
    target_latency: float
    min_size: int = 10
    max_size: int = 100_000
    initial_size: int = 100
    #: widen only when comfortably under budget (hysteresis band)
    low_water_fraction: float = 0.5
    grow_factor: float = 1.5
    shrink_factor: float = 0.5

    _current: int = field(init=False)
    history: List[tuple] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.target_latency <= 0:
            raise ValueError("target_latency must be positive")
        if not (0 < self.min_size <= self.initial_size <= self.max_size):
            raise ValueError("require 0 < min_size <= initial_size <= max_size")
        if not 0 < self.low_water_fraction < 1:
            raise ValueError("low_water_fraction must be in (0, 1)")
        self._current = self.initial_size

    @property
    def window_size(self) -> int:
        """The size the next window should use."""
        return self._current

    def observe(self, window_size: int, latency_seconds: float) -> int:
        """Record one processed window; returns the new recommended size.

        Over budget → shrink multiplicatively (fast reaction to latency
        violations); comfortably under budget → grow (recover throughput);
        inside the hysteresis band → hold.
        """
        self.history.append((window_size, latency_seconds))
        if latency_seconds > self.target_latency:
            self._current = max(
                self.min_size, int(self._current * self.shrink_factor)
            )
        elif latency_seconds < self.target_latency * self.low_water_fraction:
            self._current = min(
                self.max_size, max(self._current + 1, int(self._current * self.grow_factor))
            )
        return self._current

    def drive(
        self,
        system,
        updates,
        flush_every: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        """Feed ``updates`` through a TesseractSystem, adapting as it goes.

        Submits updates in controller-sized windows (closing each window
        explicitly), processes them, observes the measured latency, and
        resizes.  Returns the per-window (size, latency) history.  The
        monotonic ``clock`` is injectable so tests can drive the controller
        with synthetic latencies; measured seconds feed only the resizing
        decision and the history, never the result stream.
        """
        buffered = 0
        for update in updates:
            system.submit(update)
            buffered += 1
            if buffered >= self._current:
                size = buffered
                start = clock()
                system.ingress.close_window()
                system.run_workers()
                self.observe(size, clock() - start)
                buffered = 0
        if buffered:
            start = clock()
            system.ingress.close_window()
            system.run_workers()
            self.observe(buffered, clock() - start)
        return list(self.history)

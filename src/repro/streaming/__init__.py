"""Streaming substrate: ingress node, durable work queue, pub/sub output."""

from repro.streaming.ingress import IngressNode, Window
from repro.streaming.pubsub import PubSub, Subscription, Topic
from repro.streaming.queue import WorkItem, WorkQueue

__all__ = [
    "IngressNode",
    "Window",
    "PubSub",
    "Subscription",
    "Topic",
    "WorkItem",
    "WorkQueue",
]

"""Durable FIFO work queue with exactly-once consumption (paper section 5.3).

The paper implements its work queue with Apache Kafka "to ensure durability
of updates and exactly-once delivery to workers", with FIFO semantics and
timestamp ordering.  This in-process reproduction keeps the same contract:

* items are appended in timestamp order and assigned monotonic offsets;
* ``poll`` hands out the lowest-offset item that is neither in flight nor
  acknowledged — any pull receives a timestamp lower or equal to all other
  queued items;
* a polled item stays *in flight* until ``ack``; if its worker crashes,
  ``redeliver`` returns it to the queue, so processing is at-least-once and
  the output side deduplicates by offset to get exactly-once semantics
  (see :mod:`repro.runtime.fault`).
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import OffsetError, QueueClosedError, WorkerCrashed
from repro.telemetry import ensure
from repro.types import EdgeUpdate, Timestamp


@dataclass(frozen=True)
class WorkItem:
    """One unit of work: a single edge update within a window."""

    offset: int
    timestamp: Timestamp
    update: EdgeUpdate


class WorkQueue:
    """Single-partition durable queue: append, poll, ack, redeliver."""

    def __init__(self, telemetry=None) -> None:
        self._log: List[WorkItem] = []
        self._ready: List[int] = []  # min-heap of offsets ready to poll
        self._in_flight: Dict[int, WorkItem] = {}
        self._acked: set = set()
        self._closed = False
        self._last_ts: Timestamp = 0
        self._lock = threading.Lock()  # consumers may run on threads
        telemetry = ensure(telemetry)
        self._telemetry_on = telemetry.enabled
        registry = telemetry.registry
        self._c_appended = registry.counter(
            "repro_queue_appended_total", "work items durably appended"
        )
        self._c_acked = registry.counter(
            "repro_queue_acked_total", "work items fully processed and acked"
        )
        self._c_redelivered = registry.counter(
            "repro_queue_redelivered_total",
            "in-flight items returned to the queue after a worker crash",
        )
        self._g_depth = registry.gauge(
            "repro_queue_depth", "items currently ready to poll"
        )
        self._h_ack_latency = registry.histogram(
            "repro_queue_ack_latency_seconds",
            "seconds between an item's poll and its ack",
        )
        #: poll wall-clock per in-flight offset (telemetry mode only)
        self._poll_times: Dict[int, float] = {}

    # -- producer ------------------------------------------------------------

    def append(self, timestamp: Timestamp, update: EdgeUpdate) -> int:
        """Durably append an item; returns its offset."""
        with self._lock:
            if self._closed:
                raise QueueClosedError("cannot append to a closed queue")
            if timestamp < self._last_ts:
                raise OffsetError(
                    f"timestamps must be non-decreasing (got {timestamp} "
                    f"after {self._last_ts})"
                )
            self._last_ts = timestamp
            offset = len(self._log)
            item = WorkItem(offset=offset, timestamp=timestamp, update=update)
            self._log.append(item)
            heapq.heappush(self._ready, offset)
            self._c_appended.inc()
            self._g_depth.set(len(self._ready))
            return offset

    def close(self) -> None:
        """Stop accepting new items; consumers drain what remains."""
        with self._lock:
            self._closed = True

    # -- consumer --------------------------------------------------------

    def poll(self) -> Optional[WorkItem]:
        """Take the lowest-offset ready item, marking it in flight."""
        with self._lock:
            if not self._ready:
                return None
            offset = heapq.heappop(self._ready)
            item = self._log[offset]
            self._in_flight[offset] = item
            if self._telemetry_on:
                self._poll_times[offset] = time.perf_counter()
                self._g_depth.set(len(self._ready))
            return item

    def ack(self, offset: int) -> None:
        """Mark an in-flight item fully processed."""
        with self._lock:
            if offset not in self._in_flight:
                raise OffsetError(f"offset {offset} is not in flight")
            del self._in_flight[offset]
            self._acked.add(offset)
            self._c_acked.inc()
            if self._telemetry_on:
                polled_at = self._poll_times.pop(offset, None)
                if polled_at is not None:
                    self._h_ack_latency.observe(time.perf_counter() - polled_at)

    def redeliver(self, offset: int) -> None:
        """Return a crashed worker's in-flight item to the queue."""
        with self._lock:
            if offset not in self._in_flight:
                raise OffsetError(f"offset {offset} is not in flight")
            del self._in_flight[offset]
            heapq.heappush(self._ready, offset)
            self._c_redelivered.inc()
            if self._telemetry_on:
                self._poll_times.pop(offset, None)
                self._g_depth.set(len(self._ready))

    def redeliver_all(self, offsets: List[int]) -> None:
        for offset in offsets:
            self.redeliver(offset)

    def drain(
        self, on_poll: Optional[Callable[[WorkItem], None]] = None
    ) -> Iterator[WorkItem]:
        """Yield every ready item, acking each one on successful consumption.

        An item is acknowledged when the consumer asks for the next one —
        i.e. after its loop body completed without raising.  If the consumer
        raises or abandons the generator mid-item, that item stays in
        flight and can be redelivered, preserving at-least-once delivery.

        ``on_poll`` is invoked with each item right after it is taken; if
        it raises :class:`~repro.errors.WorkerCrashed` the item is
        redelivered (never yielded) and draining continues — the worker is
        considered restarted with fresh soft state, and the redelivered
        item is re-polled in offset order, so a crashy drain consumes
        items in exactly the crash-free order.  This is how the streaming
        session injects :class:`~repro.runtime.fault.FaultInjector` crash
        points into the one shared drain/ack loop every execution path
        uses (serial engine, process runner, simulated deployment).
        """
        while True:
            item = self.poll()
            if item is None:
                return
            if on_poll is not None:
                try:
                    on_poll(item)
                except WorkerCrashed:
                    self.redeliver(item.offset)
                    continue
            yield item
            self.ack(item.offset)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ready)

    @property
    def closed(self) -> bool:
        return self._closed

    def is_drained(self) -> bool:
        """All appended items acknowledged."""
        return not self._ready and not self._in_flight

    def in_flight_offsets(self) -> List[int]:
        return sorted(self._in_flight)

    def total_appended(self) -> int:
        return len(self._log)

    def acked_count(self) -> int:
        return len(self._acked)

    def low_watermark(self) -> Timestamp:
        """Highest timestamp T such that every item with ts <= T is acked.

        Used for ordered output release and garbage collection (paper
        sections 5.1, 5.4).  Returns 0 when nothing can be guaranteed.
        """
        watermark = self._last_ts
        pending = [self._log[o].timestamp for o in self._ready]
        pending.extend(item.timestamp for item in self._in_flight.values())
        if pending:
            watermark = min(pending) - 1
        return max(watermark, 0)

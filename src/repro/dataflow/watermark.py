"""Low watermarks for ordered output (paper sections 3.1, 5.4).

Workers process windows concurrently and may emit deltas out of timestamp
order.  A :class:`WatermarkTracker` observes which windows have fully
completed and computes the low watermark: the highest timestamp T such that
every window with timestamp <= T is done.  Ordered consumers (e.g. FSM)
release buffered records only up to the watermark.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import DataflowError
from repro.types import Timestamp


class WatermarkTracker:
    """Tracks per-window completion and derives the low watermark."""

    def __init__(self) -> None:
        self._open: Set[Timestamp] = set()
        self._completed: Set[Timestamp] = set()
        self._highest_opened: Timestamp = 0

    def open_window(self, ts: Timestamp) -> None:
        """Declare that window ``ts`` exists and is being processed."""
        if ts <= 0:
            raise DataflowError("window timestamps start at 1")
        if ts in self._completed:
            raise DataflowError(f"window {ts} already completed")
        self._open.add(ts)
        self._highest_opened = max(self._highest_opened, ts)

    def complete_window(self, ts: Timestamp) -> None:
        if ts not in self._open:
            raise DataflowError(f"window {ts} was never opened")
        self._open.remove(ts)
        self._completed.add(ts)

    def watermark(self) -> Timestamp:
        """Highest T with all opened windows <= T completed.

        Windows that were never opened are assumed not to exist (the ingress
        opens windows in timestamp order).
        """
        if not self._open:
            return self._highest_opened
        return min(self._open) - 1

    def is_complete(self, ts: Timestamp) -> bool:
        return ts <= self.watermark()

"""Differential aggregators for the AGG operator (paper section 3.3).

With an evolving graph, aggregation state must shrink when matches are
removed as well as grow when they appear.  "Tesseract handles differential
counting using the NEW and REM status emitted along with matches.
Programmers must provide the appropriate differential semantics for custom
aggregations" — an :class:`Aggregator` is exactly that contract: ``add`` for
NEW records and ``remove`` for REM records.
"""

from __future__ import annotations

import abc
from typing import Any, Generic, TypeVar

from repro.errors import AggregationError

V = TypeVar("V")
S = TypeVar("S")


class Aggregator(abc.ABC, Generic[V, S]):
    """Differential aggregation contract: a commutative group action."""

    @abc.abstractmethod
    def zero(self) -> S:
        """The empty aggregation state."""

    @abc.abstractmethod
    def add(self, state: S, value: V) -> S:
        """Fold a NEW value into the state."""

    @abc.abstractmethod
    def remove(self, state: S, value: V) -> S:
        """Retract a REM value from the state."""

    def is_zero(self, state: S) -> bool:
        """Whether the state carries no information (group is dropped)."""
        return state == self.zero()


class CountAggregator(Aggregator[Any, int]):
    """COUNT: differential cardinality."""

    def zero(self) -> int:
        return 0

    def add(self, state: int, value: Any) -> int:
        return state + 1

    def remove(self, state: int, value: Any) -> int:
        if state <= 0:
            raise AggregationError("count retracted below zero")
        return state - 1


class SumAggregator(Aggregator[Any, float]):
    """Differential sum of ``key(value)``."""

    def __init__(self, key=None) -> None:
        self.key = key if key is not None else (lambda value: value)

    def zero(self) -> float:
        return 0

    def add(self, state: float, value: Any) -> float:
        return state + self.key(value)

    def remove(self, state: float, value: Any) -> float:
        return state - self.key(value)


class MeanAggregator(Aggregator[Any, tuple]):
    """Differential mean, kept as a (count, sum) pair."""

    def __init__(self, key=None) -> None:
        self.key = key if key is not None else (lambda value: value)

    def zero(self) -> tuple:
        return (0, 0)

    def add(self, state: tuple, value: Any) -> tuple:
        count, total = state
        return (count + 1, total + self.key(value))

    def remove(self, state: tuple, value: Any) -> tuple:
        count, total = state
        if count <= 0:
            raise AggregationError("mean retracted below zero count")
        return (count - 1, total - self.key(value))

    @staticmethod
    def value(state: tuple) -> float:
        count, total = state
        return total / count if count else 0.0


class TopKAggregator(Aggregator[Any, tuple]):
    """Differential top-K: tracks value multiplicities, reports the K largest.

    State is a tuple-ized multiset ``((value, count), ...)``; retractions
    decrement counts and drop zeroed values, so the reported top-K is
    always exact (unlike sketch-based approaches, retractable because the
    full multiset is kept — fine at aggregation-key granularity).
    """

    def __init__(self, k: int, key=None) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.key = key if key is not None else (lambda value: value)

    def zero(self) -> tuple:
        return ()

    def _to_dict(self, state: tuple) -> dict:
        return {value: count for value, count in state}

    def add(self, state: tuple, value: Any) -> tuple:
        bag = self._to_dict(state)
        v = self.key(value)
        bag[v] = bag.get(v, 0) + 1
        return tuple(sorted(bag.items()))

    def remove(self, state: tuple, value: Any) -> tuple:
        bag = self._to_dict(state)
        v = self.key(value)
        if bag.get(v, 0) <= 0:
            raise AggregationError(f"top-k retraction of absent value {v!r}")
        bag[v] -= 1
        if bag[v] == 0:
            del bag[v]
        return tuple(sorted(bag.items()))

    def top(self, state: tuple):
        """The K largest values currently in the multiset."""
        expanded = []
        for value, count in state:
            expanded.extend([value] * count)
        return sorted(expanded, reverse=True)[: self.k]

"""Output processing & aggregation API (paper section 3.3, Table 2).

Differential stream operators over match deltas: MAP, FILTER, FLATMAP,
JOIN, GROUPBY, COUNT, AGG, plus the MOTIF helper re-exported from the motif
library.  The paper implements this layer on Spark Structured Streaming;
here it is a small push-based differential dataflow.
"""

from repro.dataflow.aggregation import (
    Aggregator,
    CountAggregator,
    MeanAggregator,
    SumAggregator,
    TopKAggregator,
)
from repro.dataflow.stream import Record, Stream
from repro.dataflow.watermark import WatermarkTracker
from repro.graph.canonical import motif_of as MOTIF

__all__ = [
    "Aggregator",
    "CountAggregator",
    "MeanAggregator",
    "SumAggregator",
    "TopKAggregator",
    "Record",
    "Stream",
    "WatermarkTracker",
    "MOTIF",
]

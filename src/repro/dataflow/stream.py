"""Push-based differential stream operators (paper Table 2).

A :class:`Stream` is a node in an operator pipeline.  Records flow through
with a *sign* (+1 for NEW, -1 for REM) and the update timestamp, so every
operator — including grouping, counting, and joins — maintains its state
incrementally under both additions and retractions, which is exactly what
mining an evolving graph requires (paper section 3.3).

Typical usage, mirroring the paper's motif-counting one-liner::

    source = Stream.source()
    counts = source.group_by(lambda t: MOTIF(t)).count()
    source.push_deltas(engine.process_window(window))
    counts.state()   # {motif: count}

Operators return new streams; terminal operators (``count``, ``agg``,
``to_list``) expose their state.  ``push_deltas`` accepts the engine's
:class:`~repro.types.MatchDelta` records directly.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.dataflow.aggregation import Aggregator, CountAggregator
from repro.errors import DataflowError
from repro.telemetry.registry import NULL_INSTRUMENT, NULL_REGISTRY
from repro.types import MatchDelta, Timestamp


class Record:
    """A signed, timestamped value flowing through the pipeline."""

    __slots__ = ("timestamp", "sign", "value")

    def __init__(self, timestamp: Timestamp, sign: int, value: Any) -> None:
        if sign not in (1, -1):
            raise DataflowError("record sign must be +1 or -1")
        self.timestamp = timestamp
        self.sign = sign
        self.value = value

    def with_value(self, value: Any) -> "Record":
        return Record(self.timestamp, self.sign, value)

    def __repr__(self) -> str:
        symbol = "+" if self.sign > 0 else "-"
        return f"Record(ts={self.timestamp}, {symbol}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.sign == other.sign
            and self.value == other.value
        )


class Stream:
    """One operator node; subclasses override :meth:`_process`."""

    def __init__(self) -> None:
        self._downstream: List[Stream] = []
        #: per-operator record counter; the null instrument keeps push
        #: branch-free whether or not telemetry is bound (RL004)
        self._records_counter = NULL_INSTRUMENT
        self._registry = NULL_REGISTRY

    # -- construction --------------------------------------------------------

    @staticmethod
    def source() -> "Stream":
        return Stream()

    def _attach(self, node: "Stream") -> "Stream":
        self._downstream.append(node)
        node.bind_telemetry(self._registry)
        return node

    # -- telemetry -------------------------------------------------------

    def _operator_name(self) -> str:
        return type(self).__name__.lstrip("_").lower()

    def bind_telemetry(self, registry, operator: Optional[str] = None) -> "Stream":
        """Count records entering this node (and all attached descendants).

        Each operator gets one child of ``repro_dataflow_records_total``
        labeled with its lowercase class name (``map``, ``filter``,
        ``aggregatenode``, ...); operators attached later inherit the
        binding.  Unbound streams hold the shared no-op instrument, so
        the per-record path is identical either way.
        """
        self._registry = registry
        self._records_counter = registry.counter(
            "repro_dataflow_records_total",
            "records entering each dataflow operator",
        ).labels(operator=operator or self._operator_name())
        for node in self._downstream:
            node.bind_telemetry(registry)
        return self

    # -- data entry ------------------------------------------------------

    def push(self, record: Record) -> None:
        self._records_counter.inc()
        for out in self._process(record):
            for node in self._downstream:
                node.push(out)

    def push_all(self, records: Iterable[Record]) -> None:
        for record in records:
            self.push(record)

    def push_deltas(self, deltas: Iterable[MatchDelta]) -> None:
        """Feed engine output: the subgraph becomes the record value."""
        for delta in deltas:
            self.push(Record(delta.timestamp, delta.sign(), delta.subgraph))

    def _process(self, record: Record) -> Iterable[Record]:
        return (record,)

    # -- Table 2 operators -----------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "Stream":
        """MAP: transform each match."""
        return self._attach(_Map(fn))

    def filter(self, predicate: Callable[[Any], bool]) -> "Stream":
        """FILTER: keep matches satisfying the predicate."""
        return self._attach(_Filter(predicate))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "Stream":
        """FLATMAP: transform each match and flatten."""
        return self._attach(_FlatMap(fn))

    def join_table(
        self,
        table: Dict[Hashable, Any],
        key: Callable[[Any], Hashable],
    ) -> "Stream":
        """JOIN with a static table: emits (value, table[key]) pairs."""
        return self._attach(_TableJoin(table, key))

    def join(
        self,
        other: "Stream",
        key: Callable[[Any], Hashable],
        other_key: Optional[Callable[[Any], Hashable]] = None,
    ) -> "Stream":
        """JOIN with another stream: incremental two-sided hash join."""
        node = _StreamJoin(key, other_key if other_key is not None else key)
        self._attach(_JoinSide(node, left=True))
        other._attach(_JoinSide(node, left=False))
        return node

    def group_by(self, key: Callable[[Any], Hashable]) -> "GroupedStream":
        """GROUPBY: group matches by a key function."""
        return GroupedStream(self, key)

    def distinct(self) -> "Stream":
        """DISTINCT: collapse multiplicities to set semantics.

        Emits +1 the first time a value becomes present, -1 when its net
        multiplicity returns to zero, and nothing in between — the
        differential-dataflow ``distinct`` operator.  Values must be
        hashable.
        """
        return self._attach(_Distinct())

    def count(self) -> "AggregateNode":
        """COUNT over the whole stream (a single implicit group)."""
        return self.group_by(lambda _value: None).count()

    def agg(self, aggregator: Aggregator) -> "AggregateNode":
        """AGG over the whole stream with custom differential semantics."""
        return self.group_by(lambda _value: None).agg(aggregator)

    # -- sinks ---------------------------------------------------------------

    def to_list(self) -> "CollectNode":
        """Terminal sink collecting every record."""
        node = CollectNode()
        self._attach(node)
        return node

    def for_each(self, fn: Callable[[Record], None]) -> "Stream":
        node = _ForEach(fn)
        self._attach(node)
        return node


class GroupedStream:
    """The result of GROUPBY; terminal aggregations attach per-group state."""

    def __init__(self, parent: Stream, key: Callable[[Any], Hashable]) -> None:
        self.parent = parent
        self.key = key

    def count(self) -> "AggregateNode":
        return self.agg(CountAggregator())

    def agg(self, aggregator: Aggregator) -> "AggregateNode":
        node = AggregateNode(self.key, aggregator)
        self.parent._attach(node)
        return node


class _Map(Stream):
    def __init__(self, fn: Callable[[Any], Any]) -> None:
        super().__init__()
        self.fn = fn

    def _process(self, record: Record) -> Iterable[Record]:
        return (record.with_value(self.fn(record.value)),)


class _Filter(Stream):
    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        super().__init__()
        self.predicate = predicate

    def _process(self, record: Record) -> Iterable[Record]:
        if self.predicate(record.value):
            return (record,)
        return ()


class _FlatMap(Stream):
    def __init__(self, fn: Callable[[Any], Iterable[Any]]) -> None:
        super().__init__()
        self.fn = fn

    def _process(self, record: Record) -> Iterable[Record]:
        return tuple(record.with_value(v) for v in self.fn(record.value))


class _ForEach(Stream):
    def __init__(self, fn: Callable[[Record], None]) -> None:
        super().__init__()
        self.fn = fn

    def _process(self, record: Record) -> Iterable[Record]:
        self.fn(record)
        return (record,)


class _Distinct(Stream):
    """Set semantics over a multiset stream (see :meth:`Stream.distinct`)."""

    def __init__(self) -> None:
        super().__init__()
        self._counts: Dict[Any, int] = {}

    def _process(self, record: Record) -> Iterable[Record]:
        value = record.value
        before = self._counts.get(value, 0)
        after = before + record.sign
        if after < 0:
            raise DataflowError(f"distinct retraction below zero for {value!r}")
        if after == 0:
            del self._counts[value]
        else:
            self._counts[value] = after
        if before == 0 and after > 0:
            return (Record(record.timestamp, 1, value),)
        if before > 0 and after == 0:
            return (Record(record.timestamp, -1, value),)
        return ()


class _TableJoin(Stream):
    """Inner join against an immutable lookup table."""

    def __init__(
        self, table: Dict[Hashable, Any], key: Callable[[Any], Hashable]
    ) -> None:
        super().__init__()
        self.table = table
        self.key = key

    def _process(self, record: Record) -> Iterable[Record]:
        k = self.key(record.value)
        if k in self.table:
            return (record.with_value((record.value, self.table[k])),)
        return ()


class _JoinSide(Stream):
    """Adapter feeding one input of a two-sided stream join."""

    def __init__(self, join: "_StreamJoin", left: bool) -> None:
        super().__init__()
        self.join = join
        self.left = left

    def bind_telemetry(self, registry, operator: Optional[str] = None) -> "Stream":
        super().bind_telemetry(registry, operator)
        self.join.bind_telemetry(registry)
        return self

    def push(self, record: Record) -> None:  # bypass _process/_downstream
        self._records_counter.inc()
        self.join.push_side(record, self.left)


class _StreamJoin(Stream):
    """Incremental inner join: output multiplicity tracks both sides.

    Each side keeps a per-key multiset of values.  A +1 on one side emits a
    +1 pair per current value on the other side; a -1 retracts them, so the
    joined output is always consistent with recomputing from scratch.
    """

    def __init__(
        self,
        left_key: Callable[[Any], Hashable],
        right_key: Callable[[Any], Hashable],
    ) -> None:
        super().__init__()
        self.left_key = left_key
        self.right_key = right_key
        self._left: Dict[Hashable, Dict[Any, int]] = {}
        self._right: Dict[Hashable, Dict[Any, int]] = {}

    def push_side(self, record: Record, left: bool) -> None:
        self._records_counter.inc()
        key = (self.left_key if left else self.right_key)(record.value)
        mine = self._left if left else self._right
        theirs = self._right if left else self._left
        bag = mine.setdefault(key, {})
        bag[record.value] = bag.get(record.value, 0) + record.sign
        if bag[record.value] == 0:
            del bag[record.value]
        if not bag:
            del mine[key]
        outputs: List[Record] = []
        for other_value, multiplicity in theirs.get(key, {}).items():
            pair = (
                (record.value, other_value)
                if left
                else (other_value, record.value)
            )
            for _ in range(multiplicity):
                outputs.append(Record(record.timestamp, record.sign, pair))
        for out in outputs:
            for node in self._downstream:
                node.push(out)


class AggregateNode(Stream):
    """Terminal GROUPBY + AGG node exposing per-group state.

    Downstream nodes receive ``(key, state)`` records after every change,
    enabling cascaded pipelines (e.g. FSM threshold logic).
    """

    def __init__(self, key: Callable[[Any], Hashable], aggregator: Aggregator) -> None:
        super().__init__()
        self.key = key
        self.aggregator = aggregator
        self._state: Dict[Hashable, Any] = {}

    def _process(self, record: Record) -> Iterable[Record]:
        k = self.key(record.value)
        state = self._state.get(k, self.aggregator.zero())
        if record.sign > 0:
            state = self.aggregator.add(state, record.value)
        else:
            state = self.aggregator.remove(state, record.value)
        if self.aggregator.is_zero(state):
            self._state.pop(k, None)
        else:
            self._state[k] = state
        return (record.with_value((k, state)),)

    # -- state access ----------------------------------------------------

    def state(self) -> Dict[Hashable, Any]:
        """Per-group aggregation state (a single ``None`` key for COUNT())."""
        return dict(self._state)

    def value(self, key: Hashable = None, default: Any = None) -> Any:
        if key in self._state:
            return self._state[key]
        return self.aggregator.zero() if default is None else default

    def __getitem__(self, key: Hashable) -> Any:
        return self._state[key]


class CollectNode(Stream):
    """Terminal sink keeping every record that reached it."""

    def __init__(self) -> None:
        super().__init__()
        self.records: List[Record] = []

    def _process(self, record: Record) -> Iterable[Record]:
        self.records.append(record)
        return ()

    def values(self) -> List[Any]:
        return [r.value for r in self.records]

    def net_values(self) -> Dict[Any, int]:
        """Net multiplicity per value after applying all signs."""
        net: Dict[Any, int] = {}
        for r in self.records:
            net[r.value] = net.get(r.value, 0) + r.sign
            if net[r.value] == 0:
                del net[r.value]
        return net

    def __len__(self) -> int:
        return len(self.records)

"""Arabesque [64] baseline: static, distributed, BSP graph mining.

Arabesque parallelizes "via BSP-style phased execution, with subgraphs being
built incrementally in each phase, by adding one vertex or one edge at a
time" (paper section 7).  Every phase *materializes* the full frontier of
candidate embeddings, which is why Arabesque runs out of memory on
LiveJournal for 4-MC and 4-FSM-2K (the dashes in Table 4).

We rebuild it as a real level-synchronous enumerator: level k holds every
filter-passing embedding with k vertices; level k+1 is produced by canonical
extension of the entire level.  A memory model bounds the materialized
frontier; exceeding it raises :class:`ArabesqueOOM`, reproducing the paper's
OOM behaviour at a scaled-down capacity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.api import InducedMode, MiningAlgorithm
from repro.core.metrics import Metrics
from repro.errors import TesseractError
from repro.graph.bitset import BitMatrix
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.subgraph import SubgraphView
from repro.types import MatchDelta, MatchStatus, VertexId, edge_key


class ArabesqueOOM(TesseractError):
    """The modeled cluster memory cannot hold the embedding frontier."""

    def __init__(self, level: int, frontier: int, capacity: int) -> None:
        super().__init__(
            f"frontier of {frontier} embeddings at level {level} exceeds "
            f"modeled capacity {capacity}"
        )
        self.level = level
        self.frontier = frontier
        self.capacity = capacity


@dataclass
class ArabesqueRun:
    matches: List[MatchDelta]
    wall_seconds: float
    work_units: float
    peak_frontier: int
    #: candidate embeddings generated (and exchanged) across all phases —
    #: Arabesque creates candidates, shuffles them to their canonical owner,
    #: and filters in the next superstep.
    candidates_shuffled: int
    num_phases: int

    def simulated_makespan(
        self,
        num_machines: int,
        workers_per_machine: int = 16,
        barrier_cost: float = 100.0,
        shuffle_cost_per_candidate: float = 6.0,
    ) -> float:
        """BSP makespan: parallel work + per-phase barriers + shuffles.

        The shuffle term covers serializing and exchanging every candidate
        embedding between supersteps, spread over the machines' links; it
        disappears on a single machine (where Arabesque would instead be
        memory-bound — Table 4 runs it distributed only).
        """
        workers = num_machines * workers_per_machine
        parallel = self.work_units / workers
        barriers = self.num_phases * barrier_cost
        shuffle = (
            self.candidates_shuffled
            * shuffle_cost_per_candidate
            * (1.0 - 1.0 / num_machines)
            / num_machines
        )
        return parallel + barriers + shuffle


class ArabesqueModel:
    """Level-synchronous (BSP) static miner with a frontier memory model.

    ``frontier_capacity`` is the maximum number of embeddings the modeled
    cluster can materialize in one phase (scaled down with the datasets).
    """

    def __init__(
        self,
        algorithm: MiningAlgorithm,
        frontier_capacity: int = 2_000_000,
    ) -> None:
        if algorithm.induced is not InducedMode.VERTEX:
            raise NotImplementedError(
                "the Arabesque baseline supports vertex-induced algorithms"
            )
        self.algorithm = algorithm
        self.frontier_capacity = frontier_capacity

    def run(self, graph: AdjacencyGraph) -> ArabesqueRun:
        """Level-synchronous enumeration of all matches of the static graph;
        raises :class:`ArabesqueOOM` when a frontier exceeds the modeled
        memory capacity."""
        algorithm = self.algorithm
        metrics = Metrics()
        matches: List[MatchDelta] = []
        start = time.perf_counter()

        def view_of(verts: Tuple[VertexId, ...]) -> SubgraphView:
            index = {v: i for i, v in enumerate(verts)}
            matrix = BitMatrix()
            for i, v in enumerate(verts):
                bits = 0
                nbrs = graph.neighbors(v)
                for j in range(i):
                    if verts[j] in nbrs:
                        bits |= 1 << j
                matrix.append_row(bits)
            return SubgraphView(
                list(verts), matrix, [graph.vertex_label(v) for v in verts]
            )

        def consider(verts: Tuple[VertexId, ...]) -> Optional[SubgraphView]:
            s = view_of(verts)
            metrics.filter_calls += 1
            if not algorithm.filter(s):
                return None
            return s

        def emit_if_match(s: SubgraphView) -> None:
            if s.is_connected():
                metrics.match_calls += 1
                if algorithm.match(s):
                    metrics.emits += 1
                    matches.append(
                        MatchDelta(
                            timestamp=1, status=MatchStatus.NEW, subgraph=s.freeze()
                        )
                    )

        # Level 2: every edge is an embedding.
        frontier: List[Tuple[VertexId, ...]] = []
        for u, v in graph.sorted_edges():
            s = consider((u, v))
            if s is not None:
                emit_if_match(s)
                frontier.append((u, v))
        peak = len(frontier)
        candidates = len(frontier)
        phases = 1
        level = 2
        while frontier and level < algorithm.max_size:
            level += 1
            phases += 1
            next_frontier: List[Tuple[VertexId, ...]] = []
            nonlocal_candidates = [0]
            for verts in frontier:
                members = set(verts)
                extension_vertices = sorted(
                    {n for w in verts for n in graph.neighbors(w)} - members
                )
                for v in extension_vertices:
                    metrics.can_expand_calls += 1
                    if not self._canonical_extension(graph, verts, v):
                        continue
                    metrics.expansions += 1
                    nonlocal_candidates[0] += 1
                    new_verts = verts + (v,)
                    s = consider(new_verts)
                    if s is None:
                        continue
                    emit_if_match(s)
                    next_frontier.append(new_verts)
            frontier = next_frontier
            candidates += nonlocal_candidates[0]
            peak = max(peak, len(frontier))
            if peak > self.frontier_capacity:
                raise ArabesqueOOM(level, peak, self.frontier_capacity)
        wall = time.perf_counter() - start
        return ArabesqueRun(
            matches=matches,
            wall_seconds=wall,
            work_units=metrics.work_units(),
            peak_frontier=peak,
            candidates_shuffled=candidates,
            num_phases=phases,
        )

    @staticmethod
    def _canonical_extension(
        graph: AdjacencyGraph, verts: Tuple[VertexId, ...], v: VertexId
    ) -> bool:
        """Arabesque-style duplicate-free extension.

        Root rule: the embedding's first edge must be its minimal edge;
        extension rule mirrors update canonicality rule 2.
        """
        start = edge_key(verts[0], verts[1])
        nbrs = graph.neighbors(v)
        bits = 0
        for i, u in enumerate(verts):
            if u in nbrs:
                if edge_key(u, v) < start:
                    return False
                bits |= 1 << i
        found = bool(bits & 0b11)
        for idx in range(2, len(verts)):
            u = verts[idx]
            if not found and (bits >> idx) & 1:
                found = True
            elif found and u > v:
                return False
        return True

"""Peregrine [34] baseline: static, single-node, pattern-aware mining.

Peregrine compiles the patterns of interest into pattern-specific matching
plans with symmetry-breaking restrictions and matches them directly against
the graph, *without* materializing intermediate embeddings.  Its default
mode only **counts** matches — which is why the paper also builds
PeregrineMat, "a modified version of Peregrine that materializes and
outputs all matches", for an apples-to-apples comparison with Tesseract
(section 6.4, Table 5).

We rebuild both: :meth:`Peregrine.count` walks the backtracking matcher and
increments a counter (no match objects are built), while
:meth:`Peregrine.materialize` constructs and returns every match subgraph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines.static_engine import PatternMatcher
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.pattern import Pattern
from repro.types import MatchSubgraph


@dataclass
class PeregrineRun:
    """Outcome of matching one pattern set."""

    counts: Dict[Pattern, int]
    matches: List[MatchSubgraph]
    wall_seconds: float
    embeddings_checked: int

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class Peregrine:
    """Pattern-aware matcher over a static graph.

    ``patterns`` is the pattern set a mining task compiles to: a single
    k-clique for k-C, all k-vertex motifs for k-MC, etc.  ``induced``
    selects vertex-induced matching (Peregrine's default for motifs).
    """

    def __init__(self, patterns: Sequence[Pattern], induced: bool = True) -> None:
        if not patterns:
            raise ValueError("at least one pattern is required")
        self.patterns = list(patterns)
        self.matchers = [
            PatternMatcher(p, induced=induced, symmetry_breaking=True)
            for p in self.patterns
        ]

    @classmethod
    def for_cliques(cls, k: int) -> "Peregrine":
        return cls([Pattern.clique(k)])

    @classmethod
    def for_motifs(cls, k: int) -> "Peregrine":
        return cls(Pattern.all_motifs(k))

    # -- counting fast path (Peregrine's default) ----------------------------

    def count(self, graph: AdjacencyGraph) -> PeregrineRun:
        """Count matches per pattern without materializing them (Peregrine's
        default fast path)."""
        start = time.perf_counter()
        counts: Dict[Pattern, int] = {}
        checked = 0
        for pattern, matcher in zip(self.patterns, self.matchers):
            n = 0
            for _ in matcher.embeddings(graph):
                n += 1
            counts[pattern] = n
            checked += matcher.embeddings_checked
        return PeregrineRun(
            counts=counts,
            matches=[],
            wall_seconds=time.perf_counter() - start,
            embeddings_checked=checked,
        )

    # -- PeregrineMat: materialize and output all matches ---------------------

    def materialize(self, graph: AdjacencyGraph) -> PeregrineRun:
        """Enumerate and build every match (the PeregrineMat configuration)."""
        start = time.perf_counter()
        counts: Dict[Pattern, int] = {}
        matches: List[MatchSubgraph] = []
        checked = 0
        for pattern, matcher in zip(self.patterns, self.matchers):
            found = matcher.matches(graph)
            counts[pattern] = len(found)
            matches.extend(found)
            checked += matcher.embeddings_checked
        return PeregrineRun(
            counts=counts,
            matches=matches,
            wall_seconds=time.perf_counter() - start,
            embeddings_checked=checked,
        )

"""Baseline systems the paper compares against, rebuilt from scratch."""

from repro.baselines.arabesque import ArabesqueModel
from repro.baselines.deltabigjoin import DeltaBigJoin
from repro.baselines.fractal import FractalModel
from repro.baselines.peregrine import Peregrine
from repro.baselines.static_engine import PatternMatcher

__all__ = [
    "ArabesqueModel",
    "DeltaBigJoin",
    "FractalModel",
    "Peregrine",
    "PatternMatcher",
]

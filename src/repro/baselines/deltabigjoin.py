"""Delta-BigJoin [10] baseline: evolving, distributed subgraph queries.

BigJoin expresses a fixed pattern as a conjunction of edge relations
(``q := e(a,b), e(b,c), ...``) and evaluates it with the GenericJoin
worst-case-optimal algorithm: bind one pattern vertex at a time by
intersecting the adjacency of already-bound neighbors.  Delta-BigJoin
supports evolving graphs by decomposing each query into one *delta query*
per pattern edge: for an update batch, delta query i binds pattern edge i
to the updated edges and joins the remaining relations against the
appropriate graph versions (paper section 6.3).

Faithfully reproduced limitations:

* **fixed patterns only** — mining all 4-motifs needs 6 separate queries;
  5-GKS-3 needs 98 (the paper's counts); each query is a separate run;
* **no label push-down** — labeled constraints (e.g. 4-CL distinctness)
  are applied in a post-processing step after all structural matches have
  been materialized;
* **data shuffle** — in the Timely dataflow implementation every prefix
  extension crosses the network; we count those bytes
  (``bytes_shuffled``), which is the paper's 280 GB / 15 TB observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.pattern import Pattern
from repro.types import (
    EdgeKey,
    MatchDelta,
    MatchStatus,
    MatchSubgraph,
    Timestamp,
    VertexId,
    edge_key,
)

#: bytes per shuffled tuple element (64-bit vertex ids, as in BigJoin).
BYTES_PER_FIELD = 8


@dataclass
class BigJoinStats:
    """Cost accounting across a run."""

    prefixes_extended: int = 0
    bytes_shuffled: int = 0
    matches_found: int = 0
    wall_seconds: float = 0.0

    def simulated_makespan(
        self,
        num_machines: int,
        workers_per_machine: int = 16,
        work_per_prefix: float = 3.0,
        network_units_per_mb: float = 120.0,
    ) -> float:
        """Distributed makespan: parallel join work + network transfer time."""
        workers = num_machines * workers_per_machine
        parallel = self.prefixes_extended * work_per_prefix / workers
        cross_traffic = self.bytes_shuffled * (1.0 - 1.0 / num_machines)
        network = (cross_traffic / 1e6) * network_units_per_mb / num_machines
        return parallel + network


class DeltaBigJoin:
    """One fixed-pattern query with incremental (delta query) evaluation.

    ``post_filter`` is the optional second-step predicate applied to
    materialized matches (label distinctness for CL, label coverage and
    minimality for GKS) — BigJoin cannot push these into the join.
    """

    def __init__(
        self,
        pattern: Pattern,
        post_filter: Optional[Callable[[MatchSubgraph], bool]] = None,
    ) -> None:
        self.pattern = pattern
        self.post_filter = post_filter
        self.constraints = pattern.symmetry_breaking_order()
        self.stats = BigJoinStats()
        self._order_cache: Dict[Tuple[int, int], List[int]] = {}

    # -- GenericJoin core --------------------------------------------------

    def _extension_order(self, bound_a: int, bound_b: int) -> List[int]:
        """Connected slot order starting from a bound pattern edge."""
        key = (bound_a, bound_b)
        cached = self._order_cache.get(key)
        if cached is not None:
            return cached
        p = self.pattern
        order = [bound_a, bound_b]
        remaining = set(range(p.num_vertices)) - set(order)
        while remaining:
            frontier = [
                s for s in remaining if any(n in order for n in p.adjacency(s))
            ]
            nxt = max(frontier, key=lambda s: (p.degree(s), -s))
            order.append(nxt)
            remaining.remove(nxt)
        self._order_cache[key] = order
        return order

    def _generic_join(
        self,
        graph: AdjacencyGraph,
        order: List[int],
        assignment: Dict[int, VertexId],
        used: Set[VertexId],
        step: int,
        out: List[Dict[int, VertexId]],
    ) -> None:
        if step == len(order):
            out.append(dict(assignment))
            return
        p = self.pattern
        slot = order[step]
        anchors = [n for n in p.adjacency(slot) if n in assignment]
        pools = [graph.neighbors(assignment[a]) for a in anchors]
        base = min(pools, key=len)
        for v in sorted(base):
            if v in used:
                continue
            if any(v not in pool for pool in pools if pool is not base):
                continue
            if not self._constraints_ok(assignment, slot, v):
                continue
            # Extending a prefix shuffles it to the worker owning v.
            self.stats.prefixes_extended += 1
            self.stats.bytes_shuffled += (step + 1) * BYTES_PER_FIELD
            assignment[slot] = v
            used.add(v)
            self._generic_join(graph, order, assignment, used, step + 1, out)
            del assignment[slot]
            used.discard(v)

    def _constraints_ok(
        self, assignment: Dict[int, VertexId], slot: int, v: VertexId
    ) -> bool:
        for a, b in self.constraints:
            va = v if a == slot else assignment.get(a)
            vb = v if b == slot else assignment.get(b)
            if va is not None and vb is not None and not va < vb:
                return False
        return True

    # -- delta query per update --------------------------------------------

    def _matches_containing(
        self, graph: AdjacencyGraph, e: EdgeKey
    ) -> List[Dict[int, VertexId]]:
        """All pattern matches in ``graph`` containing edge ``e``.

        One delta query per pattern edge: bind that edge to the update (in
        both orientations), then GenericJoin the remaining relations.  A
        match whose assignment also covers ``e`` at an earlier pattern edge
        is skipped, mirroring the version trick BigJoin uses to avoid double
        counting across delta queries.
        """
        results: List[Dict[int, VertexId]] = []
        u, v = e
        if not (graph.has_edge(u, v)):
            return results
        for i, (a, b) in enumerate(self.pattern.edges):
            for va, vb in ((u, v), (v, u)):
                assignment = {a: va, b: vb}
                if va == vb:
                    continue
                if not self._constraints_ok_full(assignment):
                    continue
                self.stats.prefixes_extended += 1
                self.stats.bytes_shuffled += 2 * BYTES_PER_FIELD
                order = self._extension_order(a, b)
                found: List[Dict[int, VertexId]] = []
                self._generic_join(
                    graph, order, assignment, {va, vb}, 2, found
                )
                for asg in found:
                    if self._covers_earlier(asg, e, i):
                        continue
                    if self._relations_hold(graph, asg):
                        results.append(asg)
        return results

    def _constraints_ok_full(self, assignment: Dict[int, VertexId]) -> bool:
        for a, b in self.constraints:
            if a in assignment and b in assignment:
                if not assignment[a] < assignment[b]:
                    return False
        return True

    def _covers_earlier(
        self, assignment: Dict[int, VertexId], e: EdgeKey, index: int
    ) -> bool:
        for j in range(index):
            a, b = self.pattern.edges[j]
            if edge_key(assignment[a], assignment[b]) == e:
                return True
        return False

    def _relations_hold(
        self, graph: AdjacencyGraph, assignment: Dict[int, VertexId]
    ) -> bool:
        return all(
            graph.has_edge(assignment[a], assignment[b])
            for a, b in self.pattern.edges
        )

    # -- public API ------------------------------------------------------

    def process_stream(
        self,
        updates: Sequence[Tuple[EdgeKey, bool]],
        initial: Optional[AdjacencyGraph] = None,
    ) -> List[MatchDelta]:
        """Apply (edge, added) updates one at a time, emitting match deltas."""
        graph = initial.copy() if initial is not None else AdjacencyGraph()
        deltas: List[MatchDelta] = []
        start = time.perf_counter()
        for ts, (e, added) in enumerate(updates, start=1):
            u, v = e
            if added:
                if not graph.add_edge(u, v):
                    continue
                for asg in self._matches_containing(graph, e):
                    deltas.append(self._delta(ts, MatchStatus.NEW, graph, asg))
            else:
                if not graph.has_edge(u, v):
                    continue
                for asg in self._matches_containing(graph, e):
                    deltas.append(self._delta(ts, MatchStatus.REM, graph, asg))
                graph.remove_edge(u, v)
        self.stats.wall_seconds += time.perf_counter() - start
        return deltas

    def _delta(
        self,
        ts: Timestamp,
        status: MatchStatus,
        graph: AdjacencyGraph,
        assignment: Dict[int, VertexId],
    ) -> MatchDelta:
        verts = tuple(assignment[s] for s in range(self.pattern.num_vertices))
        edges = frozenset(
            edge_key(assignment[a], assignment[b]) for a, b in self.pattern.edges
        )
        match = MatchSubgraph(
            vertices=verts,
            edges=edges,
            vertex_labels=tuple(graph.vertex_label(v) for v in verts),
        )
        self.stats.matches_found += 1
        return MatchDelta(ts, status, match)

    def post_process(self, deltas: List[MatchDelta]) -> List[MatchDelta]:
        """Second-step filtering over materialized matches (e.g. labels)."""
        if self.post_filter is None:
            return deltas
        return [d for d in deltas if self.post_filter(d.subgraph)]

    # -- batched delta queries ---------------------------------------------

    def process_batch(
        self,
        graph: AdjacencyGraph,
        batch: Sequence[Tuple[EdgeKey, bool]],
        ts: Timestamp = 1,
    ) -> List[MatchDelta]:
        """Apply a whole update batch with true delta-query semantics.

        This is the mode Delta-BigJoin actually runs in: the batch ``dE``
        is applied atomically, and for pattern edges ``e_1 .. e_m`` delta
        query ``i`` binds ``e_i`` to the batch's updates while joining
        relations ``e_1 .. e_{i-1}`` against the *new* graph version and
        ``e_{i+1} .. e_m`` against the *old* one.  The alternating
        version trick guarantees each changed match is produced by exactly
        one delta query, which we realize equivalently by ordering the
        batch's edges and attributing every match to its lowest contained
        update (the same argument as Tesseract's §4.4.3).

        ``graph`` is mutated to the post-batch state.  Returns NEW deltas
        for matches present only after the batch and REM deltas for
        matches present only before it.
        """
        adds = [e for e, added in batch if added and not graph.has_edge(*e)]
        dels = [e for e, added in batch if not added and graph.has_edge(*e)]
        old = graph.copy()
        for u, v in adds:
            graph.add_edge(u, v)
        for u, v in dels:
            graph.remove_edge(u, v)
        changed = sorted(set(adds) | set(dels))
        changed_set = set(changed)
        deltas: List[MatchDelta] = []

        def lowest_update_in(asg: Dict[int, VertexId]) -> EdgeKey:
            members = [
                edge_key(asg[a], asg[b])
                for a, b in self.pattern.edges
                if edge_key(asg[a], asg[b]) in changed_set
            ]
            return min(members) if members else None

        for e in changed:
            # NEW side: matches in the new graph containing e
            for asg in self._matches_containing(graph, e):
                if lowest_update_in(asg) == e:
                    deltas.append(self._delta(ts, MatchStatus.NEW, graph, asg))
            # REM side: matches in the old graph containing e
            for asg in self._matches_containing(old, e):
                if lowest_update_in(asg) == e:
                    deltas.append(self._delta(ts, MatchStatus.REM, old, asg))
        return deltas

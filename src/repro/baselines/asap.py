"""ASAP-style approximate pattern counting (paper section 7, related work).

ASAP [33] estimates pattern counts by sampling instead of enumerating, and
"provides an error profile that allows trading accuracy for query
runtime".  This baseline implements the classic edge-anchored estimator:

* draw a uniformly random edge ``e`` of the graph;
* count (exactly, but locally) the pattern matches containing ``e``;
* scale by ``m / |E_P|`` — every match is seen once per pattern edge, so
  the estimator is unbiased for the total match count.

Averaging T trials gives a running estimate with a standard-error profile;
:meth:`ApproxPatternCounter.error_profile` reports how the confidence
interval tightens as trials increase, which is the accuracy/runtime
tradeoff ASAP exposes.  Like ASAP, this cannot *enumerate* matches and has
no evolving-graph support — the limitations the paper lists.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.deltabigjoin import DeltaBigJoin
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.pattern import Pattern


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its sampling error."""

    value: float
    std_error: float
    trials: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        margin = z * self.std_error
        return (max(self.value - margin, 0.0), self.value + margin)


class ApproxPatternCounter:
    """Unbiased sampled estimator for non-induced pattern match counts."""

    def __init__(self, pattern: Pattern, seed: int = 0) -> None:
        if pattern.num_edges() == 0:
            raise ValueError("pattern must have at least one edge")
        self.pattern = pattern
        self.rng = random.Random(seed)
        self._join = DeltaBigJoin(pattern)

    def _trial(self, graph: AdjacencyGraph, edges: Sequence) -> float:
        e = self.rng.choice(edges)
        local = len(self._join._matches_containing(graph, e))
        return len(edges) * local / self.pattern.num_edges()

    def estimate(self, graph: AdjacencyGraph, trials: int) -> Estimate:
        """Average ``trials`` edge-anchored samples."""
        if trials < 1:
            raise ValueError("trials must be positive")
        edges = graph.sorted_edges()
        if not edges:
            return Estimate(0.0, 0.0, trials)
        samples = [self._trial(graph, edges) for _ in range(trials)]
        mean = sum(samples) / trials
        if trials > 1:
            variance = sum((x - mean) ** 2 for x in samples) / (trials - 1)
            std_error = math.sqrt(variance / trials)
        else:
            std_error = float("inf")
        return Estimate(mean, std_error, trials)

    def error_profile(
        self, graph: AdjacencyGraph, trial_counts: Sequence[int]
    ) -> Dict[int, Estimate]:
        """The accuracy/runtime tradeoff: one estimate per trial budget."""
        return {t: self.estimate(graph, t) for t in trial_counts}

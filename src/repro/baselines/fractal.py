"""Fractal [24] baseline: static, distributed, DFS graph mining.

Fractal enumerates embeddings depth-first "which reduces memory footprint
and subgraph enumeration costs", but "workers coordinate with each other via
an application master, resulting in high network traffic and introducing a
bottleneck on the master" (paper section 6.2.1).

We rebuild it as a real DFS enumerator over static graphs (the same
filter/match programming model, so the identical applications run on it)
plus a distributed cost model: work parallelizes over workers, but every
root-edge task requires a master round trip, and the master serializes those
round trips — the coordination bottleneck Tesseract avoids.

Being a *static* system, mining an evolving graph means full recomputation
after every batch of updates (the paper's Figure 3 comparison).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.api import InducedMode, MiningAlgorithm
from repro.core.metrics import Metrics
from repro.core.stesseract import STesseractEngine
from repro.graph.adjacency import AdjacencyGraph
from repro.types import MatchDelta


@dataclass
class FractalRun:
    """Result of one full static computation."""

    matches: List[MatchDelta]
    wall_seconds: float
    work_units: float
    num_tasks: int
    metrics: Metrics

    def simulated_makespan(
        self,
        num_machines: int,
        workers_per_machine: int = 16,
        master_round_trip: float = 20.0,
        network_factor: float = 0.15,
    ) -> float:
        """Distributed makespan in work units.

        Work divides across workers, but every root-edge task costs a
        serialized master round trip, and workers exchange state in
        proportion to the work they perform ("high network traffic and ...
        a bottleneck on the master", paper section 6.2.1).  The traffic is
        spread over the machines' links and vanishes on a single machine.
        """
        workers = num_machines * workers_per_machine
        parallel = self.work_units / workers
        master_serial = self.num_tasks * master_round_trip
        network = (
            self.work_units
            * network_factor
            * (1.0 - 1.0 / num_machines)
            / num_machines
        )
        return parallel + master_serial + network


class FractalModel:
    """DFS static miner with master-coordination accounting."""

    def __init__(self, algorithm: MiningAlgorithm) -> None:
        self.algorithm = algorithm

    def run(self, graph: AdjacencyGraph) -> FractalRun:
        """Full computation on the entire static graph.

        Vertex-induced algorithms run on the lean static DFS engine;
        edge-induced algorithms (Fractal supports FSM) fall back to the
        generic static enumeration.
        """
        metrics = Metrics()
        start = time.perf_counter()
        if self.algorithm.induced is InducedMode.VERTEX:
            engine = STesseractEngine(self.algorithm, metrics=metrics)
            matches = engine.run(graph)
        else:
            from repro.core.engine import TesseractEngine

            matches = TesseractEngine.run_static(
                graph, self.algorithm, metrics=metrics
            )
        wall = time.perf_counter() - start
        metrics.total_seconds += wall
        return FractalRun(
            matches=matches,
            wall_seconds=wall,
            work_units=metrics.work_units(),
            num_tasks=graph.num_edges(),
            metrics=metrics,
        )

    def run_on_evolving(
        self, snapshots: List[AdjacencyGraph]
    ) -> List[FractalRun]:
        """Recompute from scratch after every increment (Figure 3 setup)."""
        return [self.run(g) for g in snapshots]

"""Static pattern matching shared by the baseline systems and FSM re-mining.

:class:`PatternMatcher` enumerates the embeddings of a fixed
:class:`~repro.graph.pattern.Pattern` in a static graph by backtracking over
pattern slots in a connected order, applying the pattern's symmetry-breaking
partial order so each match (automorphism class) is produced exactly once.
Vertex-induced and edge-induced (plain subgraph isomorphism) semantics are
both supported.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.pattern import Pattern
from repro.types import EdgeKey, MatchSubgraph, VertexId, edge_key


class PatternMatcher:
    """Backtracking matcher for one fixed pattern graph."""

    def __init__(
        self,
        pattern: Pattern,
        induced: bool = True,
        symmetry_breaking: bool = True,
    ) -> None:
        self.pattern = pattern
        self.induced = induced
        self.symmetry_breaking = symmetry_breaking
        self.order = self._matching_order()
        self.constraints = (
            pattern.symmetry_breaking_order() if symmetry_breaking else []
        )
        # Per matching step, pattern neighbors already bound.
        self._bound_nbrs: List[List[int]] = []
        position = {slot: i for i, slot in enumerate(self.order)}
        for i, slot in enumerate(self.order):
            self._bound_nbrs.append(
                [p for p in self.pattern.adjacency(slot) if position[p] < i]
            )
        self.embeddings_checked = 0

    def _matching_order(self) -> List[int]:
        """Connected matching order, highest-degree slot first."""
        p = self.pattern
        start = max(range(p.num_vertices), key=p.degree)
        order = [start]
        remaining = set(range(p.num_vertices)) - {start}
        while remaining:
            frontier = [
                s
                for s in remaining
                if any(n in order for n in p.adjacency(s))
            ]
            nxt = max(frontier, key=lambda s: (p.degree(s), -s))
            order.append(nxt)
            remaining.remove(nxt)
        return order

    # -- enumeration -----------------------------------------------------

    def embeddings(self, graph: AdjacencyGraph) -> Iterator[Dict[int, VertexId]]:
        """Yield one slot->vertex assignment per distinct match."""
        p = self.pattern
        assignment: Dict[int, VertexId] = {}
        used: Set[VertexId] = set()

        def candidates(step: int) -> Iterator[VertexId]:
            slot = self.order[step]
            if step == 0:
                return iter(sorted(graph.vertices()))
            anchors = self._bound_nbrs[step]
            pools = [graph.neighbors(assignment[a]) for a in anchors]
            smallest = min(pools, key=len)
            return iter(sorted(v for v in smallest if v not in used))

        def extend(step: int) -> Iterator[Dict[int, VertexId]]:
            if step == len(self.order):
                yield dict(assignment)
                return
            slot = self.order[step]
            wanted_label = p.labels[slot]
            for v in candidates(step):
                self.embeddings_checked += 1
                if v in used:
                    continue
                if wanted_label is not None and graph.vertex_label(v) != wanted_label:
                    continue
                if not self._edges_ok(graph, assignment, slot, v):
                    continue
                assignment[slot] = v
                used.add(v)
                if self._constraints_ok(assignment):
                    yield from extend(step + 1)
                del assignment[slot]
                used.discard(v)

        yield from extend(0)

    def _edges_ok(
        self,
        graph: AdjacencyGraph,
        assignment: Dict[int, VertexId],
        slot: int,
        v: VertexId,
    ) -> bool:
        p = self.pattern
        for other, u in assignment.items():
            pattern_edge = other in p.adjacency(slot)
            graph_edge = graph.has_edge(u, v)
            if pattern_edge and not graph_edge:
                return False
            if self.induced and graph_edge and not pattern_edge:
                return False
        return True

    def _constraints_ok(self, assignment: Dict[int, VertexId]) -> bool:
        for a, b in self.constraints:
            if a in assignment and b in assignment:
                if not assignment[a] < assignment[b]:
                    return False
        return True

    # -- convenience -----------------------------------------------------

    def count(self, graph: AdjacencyGraph) -> int:
        return sum(1 for _ in self.embeddings(graph))

    def matches(self, graph: AdjacencyGraph) -> List[MatchSubgraph]:
        """Materialized matches (vertices, edges, labels) per embedding."""
        out = []
        for emb in self.embeddings(graph):
            verts = tuple(emb[slot] for slot in range(self.pattern.num_vertices))
            if self.induced:
                edges = frozenset(
                    edge_key(u, v)
                    for u, v in itertools.combinations(verts, 2)
                    if graph.has_edge(u, v)
                )
            else:
                edges = frozenset(
                    edge_key(emb[i], emb[j]) for i, j in self.pattern.edges
                )
            out.append(
                MatchSubgraph(
                    vertices=verts,
                    edges=edges,
                    vertex_labels=tuple(graph.vertex_label(v) for v in verts),
                )
            )
        return out


def match_pattern(
    graph: AdjacencyGraph, pattern: Pattern, induced: bool = True
) -> List[MatchSubgraph]:
    """One-shot enumeration of a pattern's matches in a static graph."""
    return PatternMatcher(pattern, induced=induced).matches(graph)

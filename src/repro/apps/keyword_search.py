"""Graph keyword search (k-GKS-n), paper Algorithm 1 and Figure 1.

Given ``n`` labels of interest, find all *minimal* connected subgraphs
containing exactly one vertex of each label.  Subgraphs may contain
unlabeled ("white") vertices, but only if removing any one of them would
disconnect the subgraph — otherwise the subgraph is not minimal.

``filter`` prunes subgraphs with more than one vertex of any label of
interest (they can never match, and the condition is anti-monotone) and
bounds the subgraph size.  ``match`` checks that each label appears exactly
once and that every white vertex is a cut vertex.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.api import MiningAlgorithm
from repro.graph.subgraph import SubgraphView
from repro.types import Label


class GraphKeywordSearch(MiningAlgorithm):
    """k-GKS-n: minimal subgraphs of size <= k covering all ``labels``."""

    def __init__(self, labels: Sequence[Label], k: int = 5) -> None:
        if not labels:
            raise ValueError("at least one label of interest is required")
        if len(set(labels)) != len(labels):
            raise ValueError("labels of interest must be distinct")
        self.labels: Tuple[Label, ...] = tuple(labels)
        self.max_size = k

    @property
    def name(self) -> str:
        return f"{self.max_size}-GKS-{len(self.labels)}"

    def filter(self, s: SubgraphView) -> bool:
        if len(s) > self.max_size:
            return False
        return all(s.count_label(label) <= 1 for label in self.labels)

    def match(self, s: SubgraphView) -> bool:
        if any(s.count_label(label) != 1 for label in self.labels):
            return False
        wanted = set(self.labels)
        for v in s:
            if s.label_of(v) in wanted:
                continue
            # White (or other-labeled) vertices must be necessary: removing
            # one may not leave the subgraph connected (Algorithm 1 line 7).
            if s.is_connected_without(v):
                return False
        return True

"""Simple path mining — the example of paper section 4.3.

A *path* here is a subgraph whose vertices form one simple chain: exactly
two endpoints of degree 1 and all other vertices of degree 2 (n - 1 edges,
no cycle).  The paper uses path mining to illustrate that a single update
can emit both a REM and a NEW for the same vertex set: adding edge (1, 3)
to the path 1-2-3 removes the path match and creates a triangle, which is
no longer a path.

``filter`` is the anti-monotone relaxation: a subgraph can still *become* a
path by future expansions as long as no vertex exceeds degree 2 and no
cycle has formed (edges <= vertices - 1).
"""

from __future__ import annotations

from repro.core.api import MiningAlgorithm
from repro.graph.subgraph import SubgraphView


class PathMining(MiningAlgorithm):
    """Enumerate simple paths with between ``min_size`` and ``k`` vertices."""

    def __init__(self, k: int = 4, min_size: int = 3) -> None:
        self.max_size = k
        self.min_size = min_size

    @property
    def name(self) -> str:
        return f"{self.max_size}-Path"

    def filter(self, s: SubgraphView) -> bool:
        n = len(s)
        if n > self.max_size:
            return False
        if s.num_edges() > n - 1:
            return False  # a cycle can never be undone by expansion
        return all(s.degree(v) <= 2 for v in s)

    def match(self, s: SubgraphView) -> bool:
        n = len(s)
        if n < self.min_size or s.num_edges() != n - 1:
            return False
        degree_one = sum(1 for v in s if s.degree(v) == 1)
        return degree_one == 2

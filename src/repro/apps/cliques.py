"""k-clique enumeration (k-C) and labeled cliques (k-CL).

Paper Algorithm 1 (clique_mining): ``filter`` keeps subgraphs that are
complete — a clique with n vertices has exactly n(n-1)/2 edges — up to the
maximum size, and ``match`` accepts every filtered subgraph.  The filter
checks cliques of *any* size up to the bound, so patterns of varying sizes
are mined in one execution (this is what a subgraph-query system like
BigJoin cannot express without one query per size).

k-CL (section 6.1) extends k-C with the requirement that all vertices carry
distinct labels; the label check prunes during exploration, which is the
source of Tesseract's 6.5x win over Delta-BigJoin on 4-CL (section 6.3).
"""

from __future__ import annotations

from repro.core.api import MiningAlgorithm
from repro.graph.subgraph import SubgraphView


class CliqueMining(MiningAlgorithm):
    """k-C: enumerate all cliques with between ``min_size`` and ``k`` vertices."""

    def __init__(self, k: int = 4, min_size: int = 3) -> None:
        if k < 2:
            raise ValueError("clique size bound must be at least 2")
        self.max_size = k
        self.min_size = min_size

    @property
    def name(self) -> str:
        return f"{self.max_size}-C"

    def filter(self, s: SubgraphView) -> bool:
        n = len(s)
        return n <= self.max_size and s.num_edges() == n * (n - 1) // 2

    def match(self, s: SubgraphView) -> bool:
        return len(s) >= self.min_size


class LabeledCliqueMining(CliqueMining):
    """k-CL: cliques whose vertices all carry distinct labels.

    The distinctness check is anti-monotone (a duplicate label never goes
    away when expanding), so it belongs in ``filter`` where it prunes the
    search space immediately — the paper's argument for the general
    programming model beating join-based systems on selective patterns.
    Unlabeled vertices never qualify, since their label is indistinct.
    """

    @property
    def name(self) -> str:
        return f"{self.max_size}-CL"

    def filter(self, s: SubgraphView) -> bool:
        if not super().filter(s):
            return False
        labels = s.labels()
        if any(label is None for label in labels):
            return False
        return len(set(labels)) == len(labels)

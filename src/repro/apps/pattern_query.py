"""Run fixed subgraph queries on Tesseract's general engine.

Section 2 of the paper distinguishes *general* mining systems (patterns as
arbitrary code) from *subgraph query* systems (patterns as fixed graphs)
and notes the general model subsumes the fixed one.  This module makes
that concrete: :class:`PatternQuery` compiles a
:class:`~repro.graph.pattern.Pattern` into a filter-match algorithm, so a
BigJoin-style query runs — incrementally, on evolving graphs — without any
join machinery.

The compilation exploits a property of vertex-induced matching: every
vertex subset of a match induces an induced subgraph of the pattern.
``filter`` therefore accepts a candidate exactly when its canonical form
appears among the pattern's induced subgraphs of that size — an
anti-monotone test — and ``match`` accepts candidates whose canonical form
equals the pattern's.  Labels participate in the canonical forms, so
labeled queries prune during exploration (the paper's 4-CL argument).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.api import MiningAlgorithm
from repro.graph.canonical import CanonicalForm, canonical_form
from repro.graph.pattern import Pattern
from repro.graph.subgraph import SubgraphView


def _induced_subgraph_forms(pattern: Pattern) -> Dict[int, Set[CanonicalForm]]:
    """Canonical forms of every induced subgraph of the pattern, by size.

    Unlabeled slots (label ``None``) act as wildcards only in the sense
    that data vertices must also be unlabeled; mixed schemes should label
    every pattern slot.
    """
    forms: Dict[int, Set[CanonicalForm]] = {}
    slots = range(pattern.num_vertices)
    for size in range(1, pattern.num_vertices + 1):
        bucket: Set[CanonicalForm] = set()
        for subset in itertools.combinations(slots, size):
            index = {slot: i for i, slot in enumerate(subset)}
            edges = [
                (index[a], index[b])
                for a, b in pattern.edges
                if a in index and b in index
            ]
            labels = [pattern.labels[slot] for slot in subset]
            bucket.add(canonical_form(size, edges, labels))
        forms[size] = bucket
    return forms


class PatternQuery(MiningAlgorithm):
    """A fixed-pattern subgraph query expressed in the filter-match model.

    Matches are vertex-induced: a match is a vertex set whose induced
    subgraph (and labels) is isomorphic to ``pattern``.  This is the same
    semantics as :class:`~repro.baselines.static_engine.PatternMatcher`
    with ``induced=True``, but executes on the incremental engine.
    """

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.max_size = pattern.num_vertices
        self._target = pattern.canonical()
        self._allowed = _induced_subgraph_forms(pattern)

    @property
    def name(self) -> str:
        return f"query({self.pattern!r})"

    def _form_of(self, s: SubgraphView) -> CanonicalForm:
        verts = s.vertices()
        index = {v: i for i, v in enumerate(verts)}
        edges = [(index[u], index[v]) for u, v in s.edges()]
        return canonical_form(len(verts), edges, list(s.labels()))

    def filter(self, s: SubgraphView) -> bool:
        n = len(s)
        if n > self.max_size:
            return False
        return self._form_of(s) in self._allowed[n]

    def match(self, s: SubgraphView) -> bool:
        return len(s) == self.max_size and self._form_of(s) == self._target

"""Directed-graph mining: feed-forward loops and directed triangle census.

The paper's data model allows directed input graphs (section 2).  With
``uses_directions = True`` an algorithm sees arc orientations through
``has_directed_edge`` / ``in_degree`` / ``out_degree`` and can mine
direction-sensitive patterns.  The canonical example is the *feed-forward
loop* (FFL) from gene-regulation networks [Milo et al. 2002, the paper's
motif-counting citation]: arcs a→b, b→c, a→c — a regulator, an
intermediate, and a common target, with no cycle.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.api import MiningAlgorithm
from repro.graph.subgraph import SubgraphView


class FeedForwardLoops(MiningAlgorithm):
    """Mine feed-forward loops: triangles wired a→b→c with a→c."""

    max_size = 3
    uses_directions = True

    @property
    def name(self) -> str:
        return "FFL"

    def filter(self, s: SubgraphView) -> bool:
        n = len(s)
        # structurally a (partial) triangle; orientation checked in match
        return n <= 3 and s.num_edges() == n * (n - 1) // 2

    def match(self, s: SubgraphView) -> bool:
        if len(s) != 3:
            return False
        return classify_triangle(s) == "ffl"


class CyclicTriads(MiningAlgorithm):
    """Mine directed 3-cycles: a→b→c→a."""

    max_size = 3
    uses_directions = True

    @property
    def name(self) -> str:
        return "Cycle3"

    def filter(self, s: SubgraphView) -> bool:
        n = len(s)
        return n <= 3 and s.num_edges() == n * (n - 1) // 2

    def match(self, s: SubgraphView) -> bool:
        if len(s) != 3:
            return False
        return classify_triangle(s) == "cycle"


def classify_triangle(s: SubgraphView) -> str:
    """Classify a directed triangle: 'ffl', 'cycle', or 'other'.

    'other' covers triangles with any bidirectional/undirected arc or with
    orientations that form neither a feed-forward loop nor a 3-cycle.
    """
    a, b, c = s.vertices()
    arcs = []
    for u, v in ((a, b), (b, c), (a, c)):
        fwd = s.has_directed_edge(u, v)
        rev = s.has_directed_edge(v, u)
        if fwd and rev:
            return "other"
        arcs.append(fwd)
    # Out-degrees determine the shape: FFL has out-degrees {2, 1, 0},
    # a 3-cycle has {1, 1, 1}.
    outs = sorted(
        sum(1 for u in s if u != v and s.has_directed_edge(v, u)) for v in s
    )
    if outs == [0, 1, 2]:
        return "ffl"
    if outs == [1, 1, 1]:
        return "cycle"
    return "other"

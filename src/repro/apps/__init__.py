"""Graph mining applications from the paper's evaluation (section 6.1)."""

from repro.apps.cliques import CliqueMining, LabeledCliqueMining
from repro.apps.diamonds import CycleMining, DiamondMining
from repro.apps.directed import CyclicTriads, FeedForwardLoops, classify_triangle
from repro.apps.fsm import FrequentSubgraphMining, FSMEvent, FSMPipeline
from repro.apps.keyword_search import GraphKeywordSearch
from repro.apps.motif_counting import MotifCounting, count_motifs
from repro.apps.paths import PathMining
from repro.apps.pattern_query import PatternQuery

__all__ = [
    "CliqueMining",
    "CycleMining",
    "CyclicTriads",
    "FeedForwardLoops",
    "classify_triangle",
    "DiamondMining",
    "LabeledCliqueMining",
    "FrequentSubgraphMining",
    "FSMEvent",
    "FSMPipeline",
    "GraphKeywordSearch",
    "MotifCounting",
    "count_motifs",
    "PathMining",
    "PatternQuery",
]

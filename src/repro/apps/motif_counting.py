"""Motif counting (k-MC), paper section 3.3.

Motif counting enumerates *all* connected subgraphs up to size k — the
``filter`` keeps every subgraph and ``match`` accepts every connected one —
and counts them per motif downstream:

    stream.GROUPBY(t -> MOTIF(t.subgraph)).COUNT()

The grouping/counting side lives in :mod:`repro.dataflow`; this module
provides the enumeration algorithm and a convenience differential counter.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.api import MiningAlgorithm
from repro.graph.canonical import CanonicalForm, motif_of
from repro.graph.subgraph import SubgraphView
from repro.types import MatchDelta


class MotifCounting(MiningAlgorithm):
    """k-MC: enumerate every connected subgraph with min_size..k vertices."""

    def __init__(self, k: int = 3, min_size: int = 3) -> None:
        if k < 2:
            raise ValueError("motif size bound must be at least 2")
        self.max_size = k
        self.min_size = min_size

    @property
    def name(self) -> str:
        return f"{self.max_size}-MC"

    def filter(self, s: SubgraphView) -> bool:
        return len(s) <= self.max_size

    def match(self, s: SubgraphView) -> bool:
        return len(s) >= self.min_size


def count_motifs(
    deltas: Iterable[MatchDelta], with_labels: bool = False
) -> Dict[CanonicalForm, int]:
    """Differentially fold a delta stream into per-motif counts.

    Equivalent to ``stream.GROUPBY(MOTIF).COUNT()`` — NEW adds one, REM
    subtracts one.  Groups whose count returns to zero are dropped.
    """
    counts: Dict[CanonicalForm, int] = {}
    for delta in deltas:
        motif = motif_of(delta.subgraph, with_labels=with_labels)
        counts[motif] = counts.get(motif, 0) + delta.sign()
        if counts[motif] == 0:
            del counts[motif]
    return counts

"""Diamond and cycle mining — patterns from the paper's introduction.

The paper motivates general mining with "clique or diamond mining" [19,
30]; a *diamond* is a 4-cycle with one chord (two triangles sharing an
edge).  Both are written directly in the filter-match model rather than
compiled from fixed patterns, as a demonstration of anti-monotone filter
design:

* diamonds: every vertex keeps degree >= 2 once the subgraph has 4
  vertices; intermediate subgraphs merely cap the edge count;
* cycles: like path mining, degree <= 2 everywhere and at most one cycle
  can close — and it must close exactly at the target size.
"""

from __future__ import annotations

from repro.core.api import MiningAlgorithm
from repro.graph.subgraph import SubgraphView


class DiamondMining(MiningAlgorithm):
    """Enumerate diamonds: K4 minus one edge (vertex-induced)."""

    max_size = 4

    @property
    def name(self) -> str:
        return "Diamond"

    def filter(self, s: SubgraphView) -> bool:
        n = len(s)
        if n > 4:
            return False
        # a diamond's induced subgraphs never exceed these edge counts
        max_edges = {1: 0, 2: 1, 3: 3, 4: 5}[n]
        return s.num_edges() <= max_edges

    def match(self, s: SubgraphView) -> bool:
        if len(s) != 4 or s.num_edges() != 5:
            return False
        degrees = sorted(s.degree(v) for v in s)
        return degrees == [2, 2, 3, 3]


class CycleMining(MiningAlgorithm):
    """Enumerate simple cycles with exactly ``k`` vertices (vertex-induced).

    Vertex-induced semantics mean a matched vertex set's induced subgraph
    must *be* the cycle — chords disqualify it, which is what makes the
    degree-2 filter anti-monotone.
    """

    def __init__(self, k: int = 4) -> None:
        if k < 3:
            raise ValueError("cycles need at least 3 vertices")
        self.max_size = k

    @property
    def name(self) -> str:
        return f"{self.max_size}-Cycle"

    def filter(self, s: SubgraphView) -> bool:
        n = len(s)
        if n > self.max_size:
            return False
        if any(s.degree(v) > 2 for v in s):
            return False
        # at most one cycle, and only allowed to close at full size
        if s.num_edges() > n:
            return False
        if s.num_edges() == n and n < self.max_size:
            return False
        return True

    def match(self, s: SubgraphView) -> bool:
        n = len(s)
        return (
            n == self.max_size
            and s.num_edges() == n
            and all(s.degree(v) == 2 for v in s)
        )

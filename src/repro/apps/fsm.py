"""Frequent subgraph mining (k-FSM-s), paper section 3.3.

FSM enumerates all *frequent* subgraphs: those whose pattern has a
minimum-image-based (MNI) support [Bringmann & Nijssen] above a threshold
``s``.  Tesseract executes FSM with edge-induced subgraphs and a custom
aggregation (AGG) downstream of the match stream:

* every connected edge-induced subgraph up to size k is emitted by the
  engine as a NEW/REM delta;
* the aggregator attributes each match's vertices to the automorphism
  orbits of its pattern's canonical form and maintains, per (pattern,
  orbit), a multiset of data vertices — MNI support is the minimum distinct
  vertex count over orbits;
* matches of frequent patterns are emitted; matches of infrequent patterns
  are discarded (only support state is kept).  When a pattern's support
  crosses the threshold upward, its matches are **re-mined** from the
  current graph snapshot and emitted (the paper's recompute-on-crossing
  strategy); when it crosses downward, a ``lost_support`` event is emitted
  without enumeration.

Because support values must be consistent across updates, FSM consumes the
delta stream in timestamp order (ordered output mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.api import EdgeInduced, MiningAlgorithm
from repro.errors import AggregationError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.canonical import (
    CanonicalForm,
    automorphism_orbits,
    canonical_form_with_mapping,
)
from repro.graph.pattern import Pattern
from repro.graph.subgraph import SubgraphView
from repro.types import MatchDelta, MatchSubgraph, Timestamp, VertexId


class FrequentSubgraphMining(MiningAlgorithm):
    """The exploration side of k-FSM-s: all edge-induced subgraphs up to k.

    Frequency is a *global* property, so it cannot prune exploration; it is
    enforced by :class:`FSMPipeline` downstream.
    """

    induced = EdgeInduced
    ordered_output = True

    def __init__(
        self, k: int = 3, min_edges: int = 1, edge_labeled: bool = False
    ) -> None:
        self.max_size = k
        self.min_edges = min_edges
        #: with edge_labeled=True, emitted matches carry edge labels and
        #: the FSM pipeline distinguishes patterns by them
        self.uses_edge_labels = edge_labeled

    @property
    def name(self) -> str:
        return f"{self.max_size}-FSM"

    def filter(self, s: SubgraphView) -> bool:
        return len(s) <= self.max_size

    def match(self, s: SubgraphView) -> bool:
        return s.num_edges() >= self.min_edges


def pattern_of(match: MatchSubgraph) -> Tuple[CanonicalForm, Tuple[int, ...]]:
    """Canonical (labeled) pattern of a match plus slot mapping per vertex.

    When the match carries edge labels (``edge_labeled=True`` on the
    algorithm) they become part of the pattern identity: the same structure
    with differently labeled edges is a different pattern, and its support
    is maintained separately.
    """
    index = {v: i for i, v in enumerate(match.vertices)}
    slot_edges = [(index[u], index[v]) for u, v in match.edges]
    labels = match.vertex_labels if match.vertex_labels else None
    edge_label_map = None
    if match.edge_labels:
        edge_label_map = {}
        for (u, v), label in match.edge_labels:
            i, j = index[u], index[v]
            edge_label_map[(i, j) if i < j else (j, i)] = label
    return canonical_form_with_mapping(
        len(match.vertices), slot_edges, labels, edge_label_map
    )


@dataclass
class _PatternState:
    """Differential MNI state for one pattern."""

    form: CanonicalForm
    #: orbit id -> {data vertex -> reference count}
    images: Dict[int, Dict[VertexId, int]] = field(default_factory=dict)
    num_matches: int = 0
    frequent: bool = False

    def support(self) -> int:
        if not self.images:
            return 0
        return min(len(bag) for bag in self.images.values())


@dataclass(frozen=True)
class FSMEvent:
    """A threshold crossing reported by the pipeline."""

    timestamp: Timestamp
    pattern: CanonicalForm
    kind: str  # "became_frequent" | "lost_support"
    support: int


class FSMPipeline:
    """Custom AGG maintaining MNI support and the frequent-match output.

    ``snapshot_provider`` returns the graph as of a timestamp; it is used to
    re-mine a pattern's matches when it becomes frequent (matches seen while
    the pattern was infrequent were discarded to save space).
    """

    def __init__(
        self,
        threshold: int,
        snapshot_provider: Optional[Callable[[Timestamp], AdjacencyGraph]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("support threshold must be positive")
        self.threshold = threshold
        self.snapshot_provider = snapshot_provider
        self._patterns: Dict[CanonicalForm, _PatternState] = {}
        self.events: List[FSMEvent] = []
        self.emitted: List[MatchDelta] = []
        self.rematerializations = 0

    # -- stream consumption ------------------------------------------------

    def consume(self, deltas: List[MatchDelta]) -> None:
        """Fold an ordered batch of match deltas into FSM state."""
        for delta in deltas:
            self._apply(delta)

    def _apply(self, delta: MatchDelta) -> None:
        form, mapping = pattern_of(delta.subgraph)
        orbits = automorphism_orbits(form)
        state = self._patterns.get(form)
        if state is None:
            state = _PatternState(form=form)
            self._patterns[form] = state
        sign = delta.sign()
        for i, v in enumerate(delta.subgraph.vertices):
            orbit = orbits[mapping[i]]
            bag = state.images.setdefault(orbit, {})
            count = bag.get(v, 0) + sign
            if count < 0:
                raise AggregationError(
                    f"vertex image retracted below zero for pattern {form}"
                )
            if count == 0:
                bag.pop(v, None)
            else:
                bag[v] = count
        state.num_matches += sign
        if delta.is_new() and state.frequent:
            self.emitted.append(delta)
        elif delta.is_rem() and state.frequent:
            self.emitted.append(delta)
        self._check_threshold(state, delta.timestamp)
        if state.num_matches == 0 and state.support() == 0:
            del self._patterns[form]

    def _check_threshold(self, state: _PatternState, ts: Timestamp) -> None:
        support = state.support()
        if not state.frequent and support >= self.threshold:
            state.frequent = True
            self.events.append(
                FSMEvent(ts, state.form, "became_frequent", support)
            )
            self._rematerialize(state, ts)
        elif state.frequent and support < self.threshold:
            # Do not re-enumerate to invalidate; just report lost support
            # (the paper's downward-crossing strategy).
            state.frequent = False
            self.events.append(FSMEvent(ts, state.form, "lost_support", support))

    def _rematerialize(self, state: _PatternState, ts: Timestamp) -> None:
        """Re-mine and emit all matches of a newly frequent pattern.

        Mining a single pattern is much cheaper than mining all patterns
        (paper section 3.3); it is a fixed-pattern subgraph query against
        the snapshot at ``ts``.
        """
        if self.snapshot_provider is None:
            return
        if state.form.edge_labels:
            # Pattern graphs carry vertex labels only; edge-labeled
            # patterns report the crossing event without re-enumeration
            # (their live matches continue to stream normally).
            return
        from repro.baselines.static_engine import PatternMatcher

        graph = self.snapshot_provider(ts)
        pattern = Pattern.from_canonical(state.form)
        matcher = PatternMatcher(pattern, induced=False)
        self.rematerializations += 1
        from repro.types import MatchStatus

        for match in matcher.matches(graph):
            self.emitted.append(MatchDelta(ts, MatchStatus.NEW, match))

    # -- results ---------------------------------------------------------

    def support_of(self, form: CanonicalForm) -> int:
        state = self._patterns.get(form)
        return state.support() if state else 0

    def frequent_patterns(self) -> Dict[CanonicalForm, int]:
        """Patterns currently at or above the support threshold."""
        return {
            form: state.support()
            for form, state in self._patterns.items()
            if state.frequent
        }

    def all_supports(self) -> Dict[CanonicalForm, int]:
        return {form: state.support() for form, state in self._patterns.items()}

"""Text formats for graphs and update streams.

Two simple line formats, used by the CLI and the examples:

**Edge list** (``.edges``) — one edge per line, optional labels and
directions::

    # comment
    1 2
    3 4 friend          # edge label
    1 5 > friend        # arc 1 -> 5 with a label
    5 6 <               # arc 6 -> 5
    6 7 <>              # both directions
    v 7 orange          # vertex label declaration

**Update stream** (``.updates``) — one update per line::

    a 1 2               # add edge, optional third field = edge label
    d 1 2               # delete edge
    av 7 orange         # add vertex (label optional)
    dv 7                # delete vertex
    lv 7 blue           # set vertex label
    le 1 2 strong       # set edge label
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import InvalidUpdateError
from repro.graph.adjacency import AdjacencyGraph
from repro.types import Update

PathLike = Union[str, Path]


def _lines(path: PathLike) -> Iterator[List[str]]:
    with open(path) as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if line:
                yield line.split()


_DIRECTION_TOKENS = {">": "fwd", "<": "rev", "<>": "both"}
_DIRECTION_NAMES = {"fwd": ">", "rev": "<", "both": "<>"}


def _split_direction(extras):
    """Separate a direction token from label fields."""
    direction = None
    labels = []
    for field in extras:
        if field in _DIRECTION_TOKENS:
            direction = _DIRECTION_TOKENS[field]
        else:
            labels.append(field)
    return direction, (labels[0] if labels else None)


def read_edge_list(path: PathLike) -> AdjacencyGraph:
    """Load a graph from an edge-list file."""
    graph = AdjacencyGraph()
    for fields in _lines(path):
        if fields[0] == "v":
            if len(fields) < 2:
                raise InvalidUpdateError(f"malformed vertex line: {fields}")
            graph.add_vertex(int(fields[1]), label=fields[2] if len(fields) > 2 else None)
        else:
            if len(fields) < 2:
                raise InvalidUpdateError(f"malformed edge line: {fields}")
            u, v = int(fields[0]), int(fields[1])
            direction, label = _split_direction(fields[2:])
            graph.add_edge(u, v, label=label, direction=direction)
    return graph


def write_edge_list(graph: AdjacencyGraph, path: PathLike) -> None:
    """Write a graph as an edge-list file (labels included)."""
    with open(path, "w") as handle:
        for v in sorted(graph.vertices()):
            label = graph.vertex_label(v)
            if label is not None:
                handle.write(f"v {v} {label}\n")
        for u, v in graph.sorted_edges():
            parts = [str(u), str(v)]
            direction = graph.edge_direction(u, v)
            if direction is not None:
                parts.append(_DIRECTION_NAMES[direction])
            label = graph.edge_label(u, v)
            if label is not None:
                parts.append(label)
            handle.write(" ".join(parts) + "\n")


def _parse_add(fields):
    direction, label = _split_direction(fields[3:])
    return Update.add_edge(int(fields[1]), int(fields[2]), label, direction)


_UPDATE_PARSERS = {
    "a": _parse_add,
    "d": lambda f: Update.delete_edge(int(f[1]), int(f[2])),
    "av": lambda f: Update.add_vertex(int(f[1]), f[2] if len(f) > 2 else None),
    "dv": lambda f: Update.delete_vertex(int(f[1])),
    "lv": lambda f: Update.set_vertex_label(int(f[1]), f[2]),
    "le": lambda f: Update.set_edge_label(int(f[1]), int(f[2]), f[3]),
}


def read_update_stream(path: PathLike) -> Iterator[Update]:
    """Yield updates from an update-stream file, in file order."""
    for fields in _lines(path):
        parser = _UPDATE_PARSERS.get(fields[0])
        if parser is None:
            raise InvalidUpdateError(f"unknown update kind {fields[0]!r}")
        try:
            yield parser(fields)
        except (IndexError, ValueError) as exc:
            raise InvalidUpdateError(f"malformed update line: {fields}") from exc


def write_update_stream(updates: Iterable[Update], path: PathLike) -> None:
    """Write updates to an update-stream file."""
    from repro.types import UpdateKind

    with open(path, "w") as handle:
        for u in updates:
            if u.kind is UpdateKind.ADD_EDGE:
                parts = ["a", str(u.src), str(u.dst)]
                if u.direction is not None:
                    parts.append(_DIRECTION_NAMES[u.direction])
                if u.label is not None:
                    parts.append(u.label)
                handle.write(" ".join(parts) + "\n")
            elif u.kind is UpdateKind.DELETE_EDGE:
                handle.write(f"d {u.src} {u.dst}\n")
            elif u.kind is UpdateKind.ADD_VERTEX:
                suffix = f" {u.label}" if u.label is not None else ""
                handle.write(f"av {u.src}{suffix}\n")
            elif u.kind is UpdateKind.DELETE_VERTEX:
                handle.write(f"dv {u.src}\n")
            elif u.kind is UpdateKind.SET_VERTEX_LABEL:
                handle.write(f"lv {u.src} {u.label}\n")
            elif u.kind is UpdateKind.SET_EDGE_LABEL:
                handle.write(f"le {u.src} {u.dst} {u.label}\n")
            else:  # pragma: no cover - enum is closed
                raise InvalidUpdateError(f"unknown update kind {u.kind!r}")

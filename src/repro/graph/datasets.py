"""Scaled stand-ins for the paper's datasets (Table 3).

The paper evaluates on LiveJournal (4.8M vertices / 68.9M edges), UK-2007
(106M / 3.7B), and DC-2012 (3.5B / 128B).  A pure-Python reproduction cannot
enumerate trillions of matches, so each dataset is replaced by a synthetic
graph with the same *structural character* (degree-distribution shape and
relative density), scaled down by the documented factor.  Benchmarks report
ratios between systems, which is the quantity the paper's evaluation
establishes; see DESIGN.md "Substitutions".

====================  =====================  ==========================
Paper dataset          Stand-in               Generator
====================  =====================  ==========================
LiveJournal (LJ)       ``lj-sim``             Barabási–Albert (social)
UK-2007 (UK)           ``uk-sim``             RMAT (web hyperlinks)
DC-2012 (DC)           ``dc-sim``             RMAT, larger/denser
====================  =====================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.generators import assign_labels, barabasi_albert, rmat
from repro.types import Label

#: Labels used by graph keyword search benchmarks, per the paper's Figure 1.
GKS_LABELS: Sequence[Label] = ("orange", "green", "blue")


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one scaled dataset."""

    name: str
    paper_name: str
    paper_vertices: str
    paper_edges: str
    domain: str
    builder: Callable[[int], AdjacencyGraph]
    default_seed: int = 7


def _build_lj(seed: int) -> AdjacencyGraph:
    # Social network: preferential attachment; heavy-tailed like LJ.
    return barabasi_albert(num_vertices=800, edges_per_vertex=5, seed=seed)


_WEB_PROBS = (0.45, 0.22, 0.22, 0.11)  # moderated RMAT skew


def _build_uk(seed: int) -> AdjacencyGraph:
    # Web graph: RMAT skew.
    return rmat(scale=10, num_edges=5000, seed=seed, probabilities=_WEB_PROBS)


def _build_dc(seed: int) -> AdjacencyGraph:
    # Largest web graph: RMAT with more vertices and higher density.
    return rmat(scale=11, num_edges=12000, seed=seed, probabilities=_WEB_PROBS)


_SPECS: Dict[str, DatasetSpec] = {
    "lj-sim": DatasetSpec(
        name="lj-sim",
        paper_name="LiveJournal (LJ)",
        paper_vertices="4.8M",
        paper_edges="68.9M",
        domain="social network",
        builder=_build_lj,
    ),
    "uk-sim": DatasetSpec(
        name="uk-sim",
        paper_name="UK-2007 (UK)",
        paper_vertices="106M",
        paper_edges="3.7B",
        domain="web hyperlinks",
        builder=_build_uk,
    ),
    "dc-sim": DatasetSpec(
        name="dc-sim",
        paper_name="DC-2012 (DC)",
        paper_vertices="3.5B",
        paper_edges="128B",
        domain="web hyperlinks",
        builder=_build_dc,
    ),
}


def dataset_names() -> Sequence[str]:
    return tuple(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a stand-in description by name (KeyError if unknown)."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_SPECS)}"
        ) from None


def load_dataset(
    name: str,
    seed: Optional[int] = None,
    labeled: bool = False,
    labels: Sequence[Label] = GKS_LABELS,
    label_seed: int = 13,
) -> AdjacencyGraph:
    """Build a dataset stand-in.

    With ``labeled=True``, 1/8th of the vertices receive a random label from
    ``labels`` (the paper's GKS setup, section 6.1).
    """
    spec = dataset_spec(name)
    graph = spec.builder(spec.default_seed if seed is None else seed)
    if labeled:
        assign_labels(graph, labels, fraction_labeled=1.0 / 8.0, seed=label_seed)
    return graph


def figure1_graph() -> AdjacencyGraph:
    """The 8-vertex input graph of the paper's Figure 1 (BEFORE side).

    Vertices 1..8 with labels 1=orange, 2=blue, 3=green, 6=orange, 7=green;
    vertices 4, 5, 8 are white (unlabeled).  This reconstruction is derived
    from every constraint the paper states: the 5-GKS-3 matches on the
    BEFORE graph are exactly (1,2,3,4), (2,3,6,8), and (2,6,7,8) (section
    2); the section 4.3 walk-through fixes edges (2,3), (3,4), (1,4) and the
    absence of (1,2); and after applying :func:`figure1_updates` the match
    set is exactly (1,2,3), (1,2,5,7), (2,3,6,8), and (2,5,6,7,8).
    """
    edges = [
        (1, 4),
        (3, 4),
        (2, 3),
        (2, 8),
        (6, 8),
        (6, 7),
        (5, 7),
    ]
    labels: Dict[int, Label] = {
        1: "orange",
        2: "blue",
        3: "green",
        6: "orange",
        7: "green",
    }
    g = AdjacencyGraph.from_edges(edges)
    for v in range(1, 9):
        g.add_vertex(v)
    for v, lab in labels.items():
        g.set_vertex_label(v, lab)
    return g


def figure1_updates():
    """The three graph updates applied in Figure 1: +(1,2), +(2,5), -(6,7)."""
    from repro.types import Update

    return [
        Update.add_edge(1, 2),
        Update.add_edge(2, 5),
        Update.delete_edge(6, 7),
    ]

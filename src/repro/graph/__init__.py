"""Graph data structures, canonical forms, generators, and datasets."""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.bitset import BitMatrix
from repro.graph.canonical import CanonicalForm, canonical_form, is_isomorphic
from repro.graph.pattern import Pattern
from repro.graph.subgraph import SubgraphView

__all__ = [
    "AdjacencyGraph",
    "BitMatrix",
    "CanonicalForm",
    "canonical_form",
    "is_isomorphic",
    "Pattern",
    "SubgraphView",
]

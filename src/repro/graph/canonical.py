"""Canonical labeling of small (labeled) graphs — the motif library.

Tesseract implements its own optimized motif library to identify motifs
(paper section 5.6; the MOTIF helper of Table 2).  Every match is isomorphic
to a single fixed subgraph called a *motif*; the canonical form computed here
is the identity of that motif.

The algorithm refines vertices into cells by an isomorphism-invariant
signature (label, degree, sorted neighbor degrees), then searches only the
cell-preserving permutations for the lexicographically smallest adjacency
encoding.  Because the signature is invariant under isomorphism, two graphs
are isomorphic iff their canonical forms are equal.  This is exact and fast
for the <= 6-vertex subgraphs mining algorithms produce; it is not meant for
large graphs (the paper uses bliss [35] as an alternative there).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.types import Label, MatchSubgraph

#: Slot-level edge within a small graph: (i, j) with i < j.
SlotEdge = Tuple[int, int]


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical identity of a small labeled graph.

    ``edges`` are slot pairs after canonical relabeling, sorted; ``labels``
    are the vertex labels in canonical slot order; ``edge_labels`` (when
    the graph is edge-labeled) pairs each canonical edge with its label.
    Two graphs are isomorphic (respecting all labels) iff their canonical
    forms compare equal.
    """

    num_vertices: int
    edges: Tuple[SlotEdge, ...]
    labels: Tuple[Label, ...]
    edge_labels: Tuple[Tuple[SlotEdge, Label], ...] = ()

    def num_edges(self) -> int:
        return len(self.edges)

    def degree_sequence(self) -> Tuple[int, ...]:
        """Sorted vertex degrees — a cheap isomorphism invariant."""
        degs = [0] * self.num_vertices
        for i, j in self.edges:
            degs[i] += 1
            degs[j] += 1
        return tuple(sorted(degs))

    def __str__(self) -> str:
        label_part = ""
        if any(x is not None for x in self.labels):
            label_part = f" labels={list(self.labels)}"
        return f"Motif(n={self.num_vertices}, edges={list(self.edges)}{label_part})"


def _signature(
    n: int,
    adj: Sequence[FrozenSet[int]],
    labels: Sequence[Label],
    edge_labels: Optional[Dict[SlotEdge, Label]] = None,
) -> List[Tuple]:
    """Isomorphism-invariant per-vertex signature used to split cells."""
    degrees = [len(adj[v]) for v in range(n)]
    sigs = []
    for v in range(n):
        nbr_degs = tuple(sorted(degrees[u] for u in adj[v]))
        nbr_labels = tuple(sorted(str(labels[u]) for u in adj[v]))
        if edge_labels:
            incident = tuple(
                sorted(
                    str(edge_labels.get((v, u) if v < u else (u, v)))
                    for u in adj[v]
                )
            )
        else:
            incident = ()
        sigs.append((str(labels[v]), degrees[v], nbr_degs, nbr_labels, incident))
    return sigs


def _cell_preserving_permutations(sigs: List[Tuple]) -> Iterable[Tuple[int, ...]]:
    """Yield permutations mapping old slot -> new slot, respecting cells.

    Vertices are grouped by signature; cells are ordered by signature; a
    permutation assigns each cell a contiguous block of new slots and
    permutes freely within the cell.
    """
    cells: Dict[Tuple, List[int]] = {}
    for v, sig in enumerate(sigs):
        cells.setdefault(sig, []).append(v)
    ordered = [cells[sig] for sig in sorted(cells)]
    offsets = []
    pos = 0
    for cell in ordered:
        offsets.append(pos)
        pos += len(cell)
    for arrangement in itertools.product(
        *(itertools.permutations(cell) for cell in ordered)
    ):
        perm = [0] * len(sigs)
        for cell_idx, cell_order in enumerate(arrangement):
            base = offsets[cell_idx]
            for k, old in enumerate(cell_order):
                perm[old] = base + k
        yield tuple(perm)


@lru_cache(maxsize=65536)
def _canonical_cached(
    n: int,
    edge_tuple: Tuple[SlotEdge, ...],
    labels: Tuple[Label, ...],
    edge_label_tuple: Tuple[Tuple[SlotEdge, Label], ...] = (),
) -> CanonicalForm:
    adj: List[set] = [set() for _ in range(n)]
    for i, j in edge_tuple:
        adj[i].add(j)
        adj[j].add(i)
    frozen_adj = [frozenset(s) for s in adj]
    edge_label_map: Dict[SlotEdge, Label] = dict(edge_label_tuple)
    sigs = _signature(n, frozen_adj, labels, edge_label_map or None)

    best_key = None
    best: Optional[CanonicalForm] = None
    for perm in _cell_preserving_permutations(sigs):
        edges = tuple(
            sorted(
                (perm[i], perm[j]) if perm[i] < perm[j] else (perm[j], perm[i])
                for i, j in edge_tuple
            )
        )
        new_labels = [None] * n
        for old, new in enumerate(perm):
            new_labels[new] = labels[old]
        if edge_label_map:
            mapped_edge_labels = tuple(
                sorted(
                    (
                        (perm[i], perm[j]) if perm[i] < perm[j] else (perm[j], perm[i]),
                        edge_label_map.get((i, j)),
                    )
                    for i, j in edge_tuple
                )
            )
        else:
            mapped_edge_labels = ()
        key = (
            edges,
            tuple(str(x) for x in new_labels),
            tuple((e, str(x)) for e, x in mapped_edge_labels),
        )
        if best_key is None or key < best_key:
            best_key = key
            best = CanonicalForm(n, edges, tuple(new_labels), mapped_edge_labels)
    assert best is not None
    return best


def canonical_form(
    num_vertices: int,
    edges: Iterable[SlotEdge],
    labels: Optional[Sequence[Label]] = None,
    edge_labels: Optional[Dict[SlotEdge, Label]] = None,
) -> CanonicalForm:
    """Canonical form of a small graph given as slot edges.

    ``edges`` use vertex slots ``0..num_vertices-1``; ``labels`` (optional)
    give the label of each slot; ``edge_labels`` (optional) maps slot edges
    to their labels.  Pass neither to identify the unlabeled motif.
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    label_tuple: Tuple[Label, ...] = (
        tuple(labels) if labels is not None else tuple(None for _ in range(num_vertices))
    )
    if len(label_tuple) != num_vertices:
        raise ValueError("labels must align with num_vertices")
    norm = tuple(sorted((i, j) if i < j else (j, i) for i, j in edges))
    for i, j in norm:
        if i == j or not (0 <= i < num_vertices and 0 <= j < num_vertices):
            raise ValueError(f"invalid slot edge ({i}, {j})")
    if edge_labels:
        norm_edge_labels = tuple(
            sorted(
                ((i, j) if i < j else (j, i), label)
                for (i, j), label in edge_labels.items()
            )
        )
        known = set(norm)
        for (i, j), _label in norm_edge_labels:
            if (i, j) not in known:
                raise ValueError(f"edge label on missing edge ({i}, {j})")
    else:
        norm_edge_labels = ()
    return _canonical_cached(num_vertices, norm, label_tuple, norm_edge_labels)


@lru_cache(maxsize=65536)
def _canonical_mapping_cached(
    n: int,
    edge_tuple: Tuple[SlotEdge, ...],
    labels: Tuple[Label, ...],
    edge_label_tuple: Tuple[Tuple[SlotEdge, Label], ...] = (),
) -> Tuple[CanonicalForm, Tuple[int, ...]]:
    adj: List[set] = [set() for _ in range(n)]
    for i, j in edge_tuple:
        adj[i].add(j)
        adj[j].add(i)
    frozen_adj = [frozenset(s) for s in adj]
    edge_label_map: Dict[SlotEdge, Label] = dict(edge_label_tuple)
    sigs = _signature(n, frozen_adj, labels, edge_label_map or None)
    best_key = None
    best_form: Optional[CanonicalForm] = None
    best_perm: Optional[Tuple[int, ...]] = None
    for perm in _cell_preserving_permutations(sigs):
        edges = tuple(
            sorted(
                (perm[i], perm[j]) if perm[i] < perm[j] else (perm[j], perm[i])
                for i, j in edge_tuple
            )
        )
        new_labels = [None] * n
        for old, new in enumerate(perm):
            new_labels[new] = labels[old]
        if edge_label_map:
            mapped_edge_labels = tuple(
                sorted(
                    (
                        (perm[i], perm[j]) if perm[i] < perm[j] else (perm[j], perm[i]),
                        edge_label_map.get((i, j)),
                    )
                    for i, j in edge_tuple
                )
            )
        else:
            mapped_edge_labels = ()
        key = (
            edges,
            tuple(str(x) for x in new_labels),
            tuple((e, str(x)) for e, x in mapped_edge_labels),
        )
        if best_key is None or key < best_key:
            best_key = key
            best_form = CanonicalForm(n, edges, tuple(new_labels), mapped_edge_labels)
            best_perm = perm
    assert best_form is not None and best_perm is not None
    return best_form, best_perm


def canonical_form_with_mapping(
    num_vertices: int,
    edges: Iterable[SlotEdge],
    labels: Optional[Sequence[Label]] = None,
    edge_labels: Optional[Dict[SlotEdge, Label]] = None,
) -> Tuple[CanonicalForm, Tuple[int, ...]]:
    """Canonical form plus the permutation mapping input slots to canonical slots.

    ``mapping[i]`` is the canonical slot of input slot ``i``.  Needed by
    minimum-image-based support (FSM): each match vertex is attributed to
    the canonical slot it occupies.  Edge labels, when given, participate
    in the canonicalization (and hence in the returned mapping).
    """
    label_tuple: Tuple[Label, ...] = (
        tuple(labels) if labels is not None else tuple(None for _ in range(num_vertices))
    )
    if len(label_tuple) != num_vertices:
        raise ValueError("labels must align with num_vertices")
    norm = tuple(sorted((i, j) if i < j else (j, i) for i, j in edges))
    if edge_labels:
        norm_edge_labels = tuple(
            sorted(
                ((i, j) if i < j else (j, i), label)
                for (i, j), label in edge_labels.items()
            )
        )
    else:
        norm_edge_labels = ()
    return _canonical_mapping_cached(num_vertices, norm, label_tuple, norm_edge_labels)


@lru_cache(maxsize=8192)
def automorphism_orbits(form: CanonicalForm) -> Tuple[int, ...]:
    """Orbit id per canonical slot under the form's automorphism group.

    Slots in one orbit are interchangeable; minimum-image support must pool
    their vertex images (a triangle has a single orbit, so every match
    vertex is an image of every pattern vertex).
    """
    n = form.num_vertices
    adj: List[set] = [set() for _ in range(n)]
    for i, j in form.edges:
        adj[i].add(j)
        adj[j].add(i)
    frozen_adj = [frozenset(s) for s in adj]
    edge_label_map = dict(form.edge_labels)
    sigs = _signature(n, frozen_adj, form.labels, edge_label_map or None)
    edge_set = set(form.edges)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    def _mapped(i: int, j: int) -> Tuple[int, int]:
        return (perm[i], perm[j]) if perm[i] < perm[j] else (perm[j], perm[i])

    for perm in _cell_preserving_permutations(sigs):
        structure_ok = all(_mapped(i, j) in edge_set for i, j in form.edges)
        labels_ok = all(form.labels[v] == form.labels[perm[v]] for v in range(n))
        edge_labels_ok = all(
            edge_label_map.get(_mapped(i, j)) == label
            for (i, j), label in form.edge_labels
        )
        if structure_ok and labels_ok and edge_labels_ok:
            for v in range(n):
                union(v, perm[v])
    roots = {}
    orbits = []
    for v in range(n):
        r = find(v)
        if r not in roots:
            roots[r] = len(roots)
        orbits.append(roots[r])
    return tuple(orbits)


def motif_of(
    match: MatchSubgraph,
    with_labels: bool = False,
    with_edge_labels: bool = False,
) -> CanonicalForm:
    """The MOTIF helper (Table 2): canonical form of an emitted match."""
    index = {v: i for i, v in enumerate(match.vertices)}
    slot_edges = [(index[u], index[v]) for u, v in match.edges]
    labels = match.vertex_labels if with_labels and match.vertex_labels else None
    edge_labels = None
    if with_edge_labels and match.edge_labels:
        edge_labels = {}
        for (u, v), label in match.edge_labels:
            i, j = index[u], index[v]
            edge_labels[(i, j) if i < j else (j, i)] = label
    return canonical_form(len(match.vertices), slot_edges, labels, edge_labels)


def is_isomorphic(
    n1: int,
    edges1: Iterable[SlotEdge],
    n2: int,
    edges2: Iterable[SlotEdge],
    labels1: Optional[Sequence[Label]] = None,
    labels2: Optional[Sequence[Label]] = None,
) -> bool:
    """Exact (label-respecting) isomorphism test for small graphs."""
    if n1 != n2:
        return False
    return canonical_form(n1, edges1, labels1) == canonical_form(n2, edges2, labels2)


def connected_motifs(k: int) -> List[CanonicalForm]:
    """All connected unlabeled motifs on exactly ``k`` vertices.

    For k=4 this returns the six 4-motifs of the paper's Figure 4.
    """
    if k <= 0:
        return []
    if k == 1:
        return [canonical_form(1, [])]
    possible = list(itertools.combinations(range(k), 2))
    seen = {}
    # A connected graph on k vertices needs at least k-1 edges.
    for m in range(k - 1, len(possible) + 1):
        for subset in itertools.combinations(possible, m):
            form = canonical_form(k, subset)
            if form in seen:
                continue
            if _edges_connected(k, subset):
                seen[form] = True
    return sorted(
        seen,
        key=lambda f: (f.num_edges(), f.degree_sequence(), f.edges),
    )


def _edges_connected(k: int, edges: Sequence[SlotEdge]) -> bool:
    adj: List[List[int]] = [[] for _ in range(k)]
    for i, j in edges:
        adj[i].append(j)
        adj[j].append(i)
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for u in adj[v]:
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return len(seen) == k

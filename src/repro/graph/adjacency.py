"""A plain in-memory undirected graph.

This is the simple, single-version graph used by the static baselines, the
synthetic generators, and as a loading format for the multiversioned store.
The evolving-graph machinery lives in :mod:`repro.store`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import UnknownVertexError
from repro.types import EdgeKey, Label, VertexId, edge_key


class AdjacencyGraph:
    """Undirected labeled graph stored as adjacency sets.

    Supports vertex labels and edge labels.  Self-loops and parallel edges
    are rejected, matching the data model of the paper.
    """

    def __init__(self) -> None:
        self._adj: Dict[VertexId, Set[VertexId]] = {}
        self._vertex_labels: Dict[VertexId, Label] = {}
        self._edge_labels: Dict[EdgeKey, Label] = {}
        #: normalized direction per edge key; absent = undirected
        self._edge_directions: Dict[EdgeKey, str] = {}
        self._num_edges = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[VertexId, VertexId]],
        vertex_labels: Optional[Dict[VertexId, Label]] = None,
    ) -> "AdjacencyGraph":
        """Build a graph from an edge iterable plus optional vertex labels."""
        g = cls()
        for u, v in edges:
            g.add_edge(u, v)
        if vertex_labels:
            for v, label in vertex_labels.items():
                g.add_vertex(v)
                g.set_vertex_label(v, label)
        return g

    def copy(self) -> "AdjacencyGraph":
        """Deep copy (adjacency, labels, and directions are all duplicated)."""
        g = AdjacencyGraph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._vertex_labels = dict(self._vertex_labels)
        g._edge_labels = dict(self._edge_labels)
        g._edge_directions = dict(self._edge_directions)
        g._num_edges = self._num_edges
        return g

    # -- mutation --------------------------------------------------------

    def add_vertex(self, v: VertexId, label: Label = None) -> None:
        if v not in self._adj:
            self._adj[v] = set()
        if label is not None:
            self._vertex_labels[v] = label

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        label: Label = None,
        direction: Optional[str] = None,
    ) -> bool:
        """Add edge {u, v}; return False if it already existed.

        ``direction`` is expressed as u->v ("fwd"), v->u ("rev"), "both",
        or None for undirected.
        """
        if u == v:
            raise ValueError("self-loops are not supported")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        if label is not None:
            self._edge_labels[edge_key(u, v)] = label
        if direction is not None:
            from repro.types import normalize_direction

            self._edge_directions[edge_key(u, v)] = normalize_direction(
                u, v, direction
            )
        return True

    def remove_edge(self, u: VertexId, v: VertexId) -> bool:
        """Remove edge {u, v}; return False if it did not exist."""
        if u not in self._adj or v not in self._adj[u]:
            return False
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_labels.pop(edge_key(u, v), None)
        self._edge_directions.pop(edge_key(u, v), None)
        self._num_edges -= 1
        return True

    def remove_vertex(self, v: VertexId) -> None:
        """Remove ``v`` and every edge incident to it."""
        if v not in self._adj:
            raise UnknownVertexError(v)
        for nbr in list(self._adj[v]):
            self.remove_edge(v, nbr)
        del self._adj[v]
        self._vertex_labels.pop(v, None)

    def set_vertex_label(self, v: VertexId, label: Label) -> None:
        if v not in self._adj:
            raise UnknownVertexError(v)
        self._vertex_labels[v] = label

    def set_edge_label(self, u: VertexId, v: VertexId, label: Label) -> None:
        if not self.has_edge(u, v):
            raise UnknownVertexError(u)
        self._edge_labels[edge_key(u, v)] = label

    # -- queries ---------------------------------------------------------

    def has_vertex(self, v: VertexId) -> bool:
        return v in self._adj

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: VertexId) -> Set[VertexId]:
        if v not in self._adj:
            raise UnknownVertexError(v)
        return self._adj[v]

    def degree(self, v: VertexId) -> int:
        return len(self.neighbors(v))

    def vertex_label(self, v: VertexId) -> Label:
        if v not in self._adj:
            raise UnknownVertexError(v)
        return self._vertex_labels.get(v)

    def edge_label(self, u: VertexId, v: VertexId) -> Label:
        return self._edge_labels.get(edge_key(u, v))

    def edge_direction(self, u: VertexId, v: VertexId) -> Optional[str]:
        """Normalized direction of edge {u, v}; None if undirected/absent."""
        return self._edge_directions.get(edge_key(u, v))

    def has_directed_edge(self, u: VertexId, v: VertexId) -> bool:
        """Whether an arc u -> v exists (undirected edges count both ways)."""
        if not self.has_edge(u, v):
            return False
        direction = self._edge_directions.get(edge_key(u, v))
        if direction is None or direction == "both":
            return True
        wanted = "fwd" if u <= v else "rev"
        return direction == wanted

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._adj)

    def edges(self) -> Iterator[EdgeKey]:
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def num_vertices(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return self._num_edges

    def sorted_edges(self) -> List[EdgeKey]:
        """All edges in the strict total order used for snapshot exploration."""
        return sorted(self.edges())

    # -- interop ---------------------------------------------------------

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (networkx must be installed)."""
        import networkx as nx

        g = nx.Graph()
        for v in self._adj:
            label = self._vertex_labels.get(v)
            if label is not None:
                g.add_node(v, label=label)
            else:
                g.add_node(v)
        for u, v in self.edges():
            label = self._edge_labels.get((u, v))
            if label is not None:
                g.add_edge(u, v, label=label)
            else:
                g.add_edge(u, v)
        return g

    @classmethod
    def from_networkx(cls, nx_graph) -> "AdjacencyGraph":
        """Import from a ``networkx.Graph`` (node/edge 'label' attributes)."""
        g = cls()
        for v, data in nx_graph.nodes(data=True):
            g.add_vertex(int(v), label=data.get("label"))
        for u, v, data in nx_graph.edges(data=True):
            g.add_edge(int(u), int(v), label=data.get("label"))
        return g

    def __contains__(self, v: VertexId) -> bool:
        return v in self._adj

    def __repr__(self) -> str:
        return (
            f"AdjacencyGraph({self.num_vertices()} vertices, "
            f"{self.num_edges()} edges)"
        )

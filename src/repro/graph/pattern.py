"""Fixed pattern graphs for subgraph-query baselines.

Tesseract expresses patterns as arbitrary ``filter``/``match`` code, but the
systems it is compared against (Delta-BigJoin, Peregrine) match *fixed*
pattern graphs.  A :class:`Pattern` is a small connected graph over slots
``0..k-1`` with optional slot labels; it also computes its automorphisms and
the symmetry-breaking partial order that pattern-aware matchers (Peregrine
[34]) use to enumerate each match exactly once.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import PatternError
from repro.graph.canonical import CanonicalForm, SlotEdge, canonical_form
from repro.types import Label


class Pattern:
    """A fixed connected pattern graph over slots 0..k-1."""

    def __init__(
        self,
        num_vertices: int,
        edges: Sequence[SlotEdge],
        labels: Optional[Sequence[Label]] = None,
    ) -> None:
        if num_vertices <= 0:
            raise PatternError("pattern must have at least one vertex")
        self.num_vertices = num_vertices
        norm = sorted({(i, j) if i < j else (j, i) for i, j in edges})
        for i, j in norm:
            if i == j or not (0 <= i < num_vertices and 0 <= j < num_vertices):
                raise PatternError(f"invalid pattern edge ({i}, {j})")
        self.edges: Tuple[SlotEdge, ...] = tuple(norm)
        self.labels: Tuple[Label, ...] = (
            tuple(labels)
            if labels is not None
            else tuple(None for _ in range(num_vertices))
        )
        if len(self.labels) != num_vertices:
            raise PatternError("labels must align with num_vertices")
        self._adj: List[Set[int]] = [set() for _ in range(num_vertices)]
        for i, j in self.edges:
            self._adj[i].add(j)
            self._adj[j].add(i)
        if num_vertices > 1 and not self._connected():
            raise PatternError("pattern must be connected")

    def _connected(self) -> bool:
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for u in self._adj[v]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        return len(seen) == self.num_vertices

    # -- structure ---------------------------------------------------------

    def adjacency(self, slot: int) -> FrozenSet[int]:
        return frozenset(self._adj[slot])

    def degree(self, slot: int) -> int:
        return len(self._adj[slot])

    def num_edges(self) -> int:
        return len(self.edges)

    def canonical(self) -> CanonicalForm:
        return canonical_form(self.num_vertices, self.edges, self.labels)

    def is_labeled(self) -> bool:
        return any(x is not None for x in self.labels)

    # -- symmetry ------------------------------------------------------------

    def automorphisms(self) -> List[Tuple[int, ...]]:
        """All label-respecting automorphisms (as slot permutations)."""
        result = []
        edge_set = set(self.edges)
        degs = [self.degree(v) for v in range(self.num_vertices)]
        for perm in itertools.permutations(range(self.num_vertices)):
            if any(degs[v] != degs[perm[v]] for v in range(self.num_vertices)):
                continue
            if any(self.labels[v] != self.labels[perm[v]] for v in range(self.num_vertices)):
                continue
            ok = all(
                ((perm[i], perm[j]) if perm[i] < perm[j] else (perm[j], perm[i]))
                in edge_set
                for i, j in self.edges
            )
            if ok:
                result.append(perm)
        return result

    def symmetry_breaking_order(self) -> List[Tuple[int, int]]:
        """Partial-order constraints (a < b) that kill all automorphisms.

        This is the classic symmetry-breaking construction used by
        pattern-aware matchers: repeatedly pick a slot moved by a non-trivial
        automorphism, constrain it to be minimal in its orbit, and restrict
        the automorphism group to its stabilizer.  Matching under these
        constraints enumerates exactly one representative per automorphism
        class.
        """
        constraints: List[Tuple[int, int]] = []
        autos = self.automorphisms()
        while len(autos) > 1:
            moved = min(
                v
                for v in range(self.num_vertices)
                if any(p[v] != v for p in autos)
            )
            orbit = sorted({p[moved] for p in autos})
            for other in orbit:
                if other != moved:
                    constraints.append((moved, other))
            autos = [p for p in autos if p[moved] == moved]
        return constraints

    # -- common shapes -------------------------------------------------------

    @staticmethod
    def clique(k: int, labels: Optional[Sequence[Label]] = None) -> "Pattern":
        return Pattern(k, list(itertools.combinations(range(k), 2)), labels)

    @staticmethod
    def path(k: int) -> "Pattern":
        return Pattern(k, [(i, i + 1) for i in range(k - 1)])

    @staticmethod
    def cycle(k: int) -> "Pattern":
        if k < 3:
            raise PatternError("cycle requires k >= 3")
        return Pattern(k, [(i, (i + 1) % k) for i in range(k)])

    @staticmethod
    def star(k: int) -> "Pattern":
        """A star with one hub and k-1 spokes (k vertices total)."""
        if k < 2:
            raise PatternError("star requires k >= 2")
        return Pattern(k, [(0, i) for i in range(1, k)])

    @staticmethod
    def from_canonical(form: CanonicalForm) -> "Pattern":
        return Pattern(form.num_vertices, form.edges, form.labels)

    @staticmethod
    def all_motifs(k: int) -> List["Pattern"]:
        """One pattern per connected unlabeled motif on exactly k vertices."""
        from repro.graph.canonical import connected_motifs

        return [Pattern.from_canonical(f) for f in connected_motifs(k)]

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        return (
            f"Pattern(n={self.num_vertices}, edges={list(self.edges)}"
            + (f", labels={list(self.labels)}" if self.is_labeled() else "")
            + ")"
        )

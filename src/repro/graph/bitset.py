"""Fixed-size bitset adjacency matrix for exploration subgraphs.

The paper (section 5.6) stores the edges connecting vertices of a candidate
subgraph in a bitset representing the subgraph's adjacency matrix, so that
edge counting, degree computation, expansion, and backtracking are cheap
bitwise operations.  Python integers are arbitrary-precision bitsets, which
makes this representation natural: row ``i`` of the matrix is an int whose
bit ``j`` is set iff vertices ``i`` and ``j`` are adjacent in the subgraph.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class BitMatrix:
    """A small symmetric adjacency matrix over positional vertex slots.

    Slots are positions in the exploration order (0, 1, 2, ...), not graph
    vertex ids.  The matrix supports O(1) row append/pop, which is exactly
    the expand/backtrack pattern of the EXPLORE algorithm.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: List[int] | None = None) -> None:
        self._rows = list(rows) if rows else []

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterator[Tuple[int, int]]) -> "BitMatrix":
        """Build an ``n``-slot matrix from (slot, slot) edge pairs."""
        m = cls([0] * n)
        for i, j in edges:
            m.set_edge(i, j)
        return m

    def copy(self) -> "BitMatrix":
        return BitMatrix(self._rows)

    # -- size --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    # -- expansion / backtracking ------------------------------------------

    def append_row(self, neighbor_bits: int) -> None:
        """Add a new slot adjacent to the slots set in ``neighbor_bits``.

        ``neighbor_bits`` may only reference existing slots.  This is the
        EXPAND step: the new vertex's connections to the current subgraph.
        """
        n = len(self._rows)
        if neighbor_bits >> n:
            raise ValueError("neighbor_bits references slots beyond the matrix")
        bit = 1 << n
        for i in range(n):
            if neighbor_bits & (1 << i):
                self._rows[i] |= bit
        self._rows.append(neighbor_bits)

    def pop_row(self) -> None:
        """Remove the most recently appended slot (the backtrack step)."""
        if not self._rows:
            raise IndexError("pop from empty BitMatrix")
        n = len(self._rows) - 1
        bit = 1 << n
        self._rows.pop()
        mask = ~bit
        for i in range(n):
            self._rows[i] &= mask

    # -- edge accessors ------------------------------------------------------

    def set_edge(self, i: int, j: int) -> None:
        """Connect slots ``i`` and ``j`` (symmetric; self-loops rejected)."""
        if i == j:
            raise ValueError("self-loops are not representable")
        self._check(i)
        self._check(j)
        self._rows[i] |= 1 << j
        self._rows[j] |= 1 << i

    def clear_edge(self, i: int, j: int) -> None:
        self._check(i)
        self._check(j)
        self._rows[i] &= ~(1 << j)
        self._rows[j] &= ~(1 << i)

    def has_edge(self, i: int, j: int) -> bool:
        self._check(i)
        self._check(j)
        return bool(self._rows[i] >> j & 1)

    def row(self, i: int) -> int:
        self._check(i)
        return self._rows[i]

    def _check(self, i: int) -> None:
        if not 0 <= i < len(self._rows):
            raise IndexError(f"slot {i} out of range for {len(self._rows)} slots")

    # -- bulk queries (bitwise, per the paper's optimization) ----------------

    def degree(self, i: int) -> int:
        """Degree of slot ``i`` within the subgraph (a popcount)."""
        return self.row(i).bit_count()

    def num_edges(self) -> int:
        """Number of undirected edges (half the total popcount)."""
        return sum(r.bit_count() for r in self._rows) // 2

    def is_connected(self) -> bool:
        """Whether the subgraph is connected, via bitwise frontier expansion."""
        n = len(self._rows)
        if n == 0:
            return False
        if n == 1:
            return True
        visited = 1  # slot 0
        frontier = self._rows[0]
        while frontier:
            visited |= frontier
            nxt = 0
            f = frontier
            while f:
                low = f & -f
                nxt |= self._rows[low.bit_length() - 1]
                f ^= low
            frontier = nxt & ~visited
        return visited.bit_count() == n

    def is_connected_without(self, i: int) -> bool:
        """Whether the subgraph stays connected when slot ``i`` is removed.

        Used by minimality checks such as graph keyword search (Algorithm 1
        line 7: ``IS_CONNECTED(s \\ v)``).
        """
        n = len(self._rows)
        self._check(i)
        if n <= 1:
            return False
        if n == 2:
            return True
        excluded = 1 << i
        start = 0 if i != 0 else 1
        visited = 1 << start
        frontier = self._rows[start] & ~excluded
        while frontier:
            visited |= frontier
            nxt = 0
            f = frontier
            while f:
                low = f & -f
                nxt |= self._rows[low.bit_length() - 1]
                f ^= low
            frontier = nxt & ~(visited | excluded)
        return visited.bit_count() == n - 1

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield undirected slot pairs (i, j) with i < j for each edge."""
        for i, r in enumerate(self._rows):
            bits = r >> (i + 1)
            j = i + 1
            while bits:
                if bits & 1:
                    yield (i, j)
                bits >>= 1
                j += 1

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(tuple(self._rows))

    def __repr__(self) -> str:
        n = len(self._rows)
        return f"BitMatrix({n} slots, {self.num_edges()} edges)"

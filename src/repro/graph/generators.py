"""Synthetic graph generators.

The paper evaluates on LiveJournal (social network, heavy-tailed degrees),
UK-2007, and DC-2012 (web hyperlink graphs).  Those datasets are far beyond
pure-Python scale, so :mod:`repro.graph.datasets` builds scaled stand-ins
using the generators here.  All generators are deterministic given a seed.

Implemented from scratch (no networkx dependency in library code):

* :func:`barabasi_albert` — preferential attachment; power-law degree tails
  like a social network.
* :func:`rmat` — recursive matrix (Kronecker-style) generator; skewed,
  community-ish structure like web graphs.
* :func:`erdos_renyi` — uniform random baseline.
* :func:`planted_communities` — dense communities with sparse cross edges;
  useful for keyword-search and FSM workloads.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.types import Label, VertexId


def barabasi_albert(
    num_vertices: int, edges_per_vertex: int, seed: int = 0
) -> AdjacencyGraph:
    """Preferential-attachment graph with ``edges_per_vertex`` per new vertex."""
    if num_vertices < 1 or edges_per_vertex < 1:
        raise ValueError("num_vertices and edges_per_vertex must be positive")
    rng = random.Random(seed)
    g = AdjacencyGraph()
    m = min(edges_per_vertex, max(1, num_vertices - 1))
    # Seed clique of m+1 vertices so early targets exist.
    core = min(m + 1, num_vertices)
    for u in range(core):
        g.add_vertex(u)
        for w in range(u):
            g.add_edge(u, w)
    # Repeated-endpoints list implements preferential attachment in O(1).
    endpoints: List[VertexId] = []
    for u, v in g.edges():
        endpoints.extend((u, v))
    if not endpoints:
        endpoints = [0]
    for v in range(core, num_vertices):
        targets: Set[VertexId] = set()
        while len(targets) < m:
            targets.add(rng.choice(endpoints))
        for t in targets:
            g.add_edge(v, t)
            endpoints.extend((v, t))
    return g


def erdos_renyi(num_vertices: int, num_edges: int, seed: int = 0) -> AdjacencyGraph:
    """Uniform random graph with exactly ``num_edges`` distinct edges."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError("num_edges exceeds the complete graph")
    rng = random.Random(seed)
    g = AdjacencyGraph()
    for v in range(num_vertices):
        g.add_vertex(v)
    added = 0
    while added < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def rmat(
    scale: int,
    num_edges: int,
    seed: int = 0,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
) -> AdjacencyGraph:
    """RMAT (recursive matrix) generator: 2**scale vertices, skewed degrees.

    Web-hyperlink-like structure per the Graph500 parameterization.  Isolated
    vertex ids are left out of the graph (only endpoint vertices exist).
    """
    a, b, c, d = probabilities
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError("probabilities must sum to 1")
    rng = random.Random(seed)
    n = 1 << scale
    g = AdjacencyGraph()
    attempts = 0
    max_attempts = num_edges * 50
    while g.num_edges() < num_edges and attempts < max_attempts:
        attempts += 1
        u = v = 0
        span = n
        while span > 1:
            span >>= 1
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += span
            elif r < a + b + c:
                u += span
            else:
                u += span
                v += span
        if u != v:
            g.add_edge(u, v)
    return g


def planted_communities(
    num_communities: int,
    community_size: int,
    intra_edges: int,
    inter_edges: int,
    seed: int = 0,
) -> AdjacencyGraph:
    """Dense communities with sparse random cross-community edges."""
    rng = random.Random(seed)
    g = AdjacencyGraph()
    n = num_communities * community_size
    for v in range(n):
        g.add_vertex(v)
    for comm in range(num_communities):
        base = comm * community_size
        members = list(range(base, base + community_size))
        added = 0
        cap = community_size * (community_size - 1) // 2
        target = min(intra_edges, cap)
        while added < target:
            u, v = rng.sample(members, 2)
            if g.add_edge(u, v):
                added += 1
    added = 0
    while added < inter_edges:
        cu, cv = rng.sample(range(num_communities), 2)
        u = cu * community_size + rng.randrange(community_size)
        v = cv * community_size + rng.randrange(community_size)
        if g.add_edge(u, v):
            added += 1
    return g


def assign_labels(
    graph: AdjacencyGraph,
    labels: Sequence[Label],
    fraction_labeled: float = 1.0 / 8.0,
    seed: int = 0,
) -> None:
    """Randomly label ``fraction_labeled`` of vertices, uniform across labels.

    Mirrors the paper's GKS setup (section 6.1): labels are assigned
    uniformly so that 1/8th of the vertices are labeled; the rest get no
    label (rendered white in Figure 1).
    """
    if not labels:
        raise ValueError("labels must be non-empty")
    if not 0.0 <= fraction_labeled <= 1.0:
        raise ValueError("fraction_labeled must be in [0, 1]")
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    num_labeled = int(len(vertices) * fraction_labeled)
    chosen = rng.sample(vertices, num_labeled) if num_labeled else []
    for v in chosen:
        graph.set_vertex_label(v, rng.choice(list(labels)))


def shuffled_edges(
    graph: AdjacencyGraph, seed: int = 0
) -> List[Tuple[VertexId, VertexId]]:
    """The graph's edges in a deterministic shuffled order.

    The paper simulates a dynamic graph by loading and applying a shuffled
    subset of a static graph's edges iteratively (section 6.1).
    """
    edges = sorted(graph.edges())
    random.Random(seed).shuffle(edges)
    return edges


def churn_stream(
    graph: AdjacencyGraph,
    num_updates: int,
    churn: float = 0.2,
    seed: int = 0,
):
    """A realistic evolving-graph update stream with deletions.

    Yields :class:`~repro.types.Update` objects: edges of ``graph`` are
    added in shuffled order, and with probability ``churn`` an update
    instead deletes a currently-present edge (which becomes eligible for
    re-addition later).  The stream is deterministic given the seed and is
    always *valid*: no duplicate adds, no deletes of absent edges.
    """
    from repro.types import Update

    if not 0.0 <= churn < 1.0:
        raise ValueError("churn must be in [0, 1)")
    rng = random.Random(seed)
    pool = sorted(graph.edges())
    rng.shuffle(pool)
    absent = list(pool)
    present: List[Tuple[VertexId, VertexId]] = []
    produced = 0
    while produced < num_updates:
        delete = present and rng.random() < churn
        if delete:
            index = rng.randrange(len(present))
            edge = present.pop(index)
            absent.append(edge)
            yield Update.delete_edge(*edge)
        elif absent:
            edge = absent.pop()
            present.append(edge)
            yield Update.add_edge(*edge)
        else:
            # everything present and the coin said add: force a delete
            index = rng.randrange(len(present))
            edge = present.pop(index)
            absent.append(edge)
            yield Update.delete_edge(*edge)
        produced += 1

"""The subgraph view handed to user ``filter`` and ``match`` functions.

A :class:`SubgraphView` pairs the list of graph vertex ids in exploration
order with a :class:`~repro.graph.bitset.BitMatrix` describing the edges
among them, plus the vertex labels at the relevant graph version.  During
differential processing the engine builds two views over the same vertex
list — one with the pre-update edges and one with the post-update edges
(paper section 4.3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.graph.bitset import BitMatrix
from repro.types import EdgeKey, Label, MatchSubgraph, VertexId, edge_key


class SubgraphView:
    """Read-only view of a candidate subgraph.

    The view exposes exactly the helpers used by the paper's example
    algorithms (Algorithm 1): ``len()``, ``num_edges()``, per-label counting,
    connectivity, and minimality checks — all backed by bitwise operations
    on the adjacency bitset (paper section 5.6).
    """

    __slots__ = (
        "_vertices",
        "_matrix",
        "_labels",
        "_slot_of",
        "_edge_label_fn",
        "_direction_fn",
    )

    def __init__(
        self,
        vertices: List[VertexId],
        matrix: BitMatrix,
        labels: Optional[List[Label]] = None,
        edge_label_fn=None,
        direction_fn=None,
    ) -> None:
        if len(matrix) != len(vertices):
            raise ValueError("matrix size must match vertex count")
        self._vertices = vertices
        self._matrix = matrix
        self._labels = labels
        self._slot_of: Optional[Dict[VertexId, int]] = None
        #: optional resolver ``(u, v) -> label`` for edge labels at the
        #: subgraph's graph version; None when the algorithm does not use
        #: edge labels (resolution is lazy to keep the common path cheap)
        self._edge_label_fn = edge_label_fn
        #: optional resolver ``(u, v) -> normalized direction``
        self._direction_fn = direction_fn

    # -- size / structure --------------------------------------------------

    def __len__(self) -> int:
        return len(self._vertices)

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        return self._matrix.num_edges()

    def vertices(self) -> Tuple[VertexId, ...]:
        return tuple(self._vertices)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._vertices)

    def __contains__(self, v: VertexId) -> bool:
        return v in self._vertices

    def _slot(self, v: VertexId) -> int:
        if self._slot_of is None:
            self._slot_of = {u: i for i, u in enumerate(self._vertices)}
        return self._slot_of[v]

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        return self._matrix.has_edge(self._slot(u), self._slot(v))

    def degree(self, v: VertexId) -> int:
        """Degree of ``v`` counting only edges inside the subgraph."""
        return self._matrix.degree(self._slot(v))

    def edges(self) -> Iterator[EdgeKey]:
        for i, j in self._matrix.edges():
            yield edge_key(self._vertices[i], self._vertices[j])

    def edge_set(self) -> FrozenSet[EdgeKey]:
        return frozenset(self.edges())

    # -- labels --------------------------------------------------------------

    def label_of(self, v: VertexId) -> Label:
        if self._labels is None:
            return None
        return self._labels[self._slot(v)]

    def labels(self) -> Tuple[Label, ...]:
        if self._labels is None:
            return tuple(None for _ in self._vertices)
        return tuple(self._labels)

    def count_label(self, label: Label) -> int:
        """Number of vertices carrying ``label`` (Algorithm 1's num_<color>)."""
        if self._labels is None:
            return 0
        return sum(1 for x in self._labels if x == label)

    # -- edge labels -------------------------------------------------------

    def edge_label(self, u: VertexId, v: VertexId) -> Label:
        """Label of edge {u, v} in this subgraph's graph version.

        Requires the algorithm to set ``uses_edge_labels = True`` so the
        engine attaches a resolver; raises otherwise.
        """
        if self._edge_label_fn is None:
            raise ValueError(
                "edge labels are not loaded; set uses_edge_labels = True "
                "on the algorithm"
            )
        if not self.has_edge(u, v):
            return None
        return self._edge_label_fn(u, v)

    def count_edge_label(self, label: Label) -> int:
        """Number of subgraph edges carrying ``label``."""
        return sum(1 for u, v in self.edges() if self.edge_label(u, v) == label)

    # -- directions --------------------------------------------------------

    def has_directed_edge(self, u: VertexId, v: VertexId) -> bool:
        """Whether the arc u -> v is in the subgraph.

        Undirected edges count in both directions.  Requires the algorithm
        to set ``uses_directions = True``.
        """
        if self._direction_fn is None:
            raise ValueError(
                "directions are not loaded; set uses_directions = True "
                "on the algorithm"
            )
        if not self.has_edge(u, v):
            return False
        direction = self._direction_fn(u, v)
        if direction is None or direction == "both":
            return True
        wanted = "fwd" if u <= v else "rev"
        return direction == wanted

    def out_degree(self, v: VertexId) -> int:
        """Number of subgraph arcs leaving ``v`` (undirected count too)."""
        count = 0
        for u in self._vertices:
            if u != v and self.has_edge(v, u) and self.has_directed_edge(v, u):
                count += 1
        return count

    def in_degree(self, v: VertexId) -> int:
        """Number of subgraph arcs entering ``v`` (undirected count too)."""
        count = 0
        for u in self._vertices:
            if u != v and self.has_edge(u, v) and self.has_directed_edge(u, v):
                count += 1
        return count

    # -- connectivity ----------------------------------------------------

    def is_connected(self) -> bool:
        return self._matrix.is_connected()

    def is_connected_without(self, v: VertexId) -> bool:
        """Connectivity of the subgraph with ``v`` removed (minimality checks)."""
        return self._matrix.is_connected_without(self._slot(v))

    # -- conversion --------------------------------------------------------

    def freeze(self) -> MatchSubgraph:
        """Materialize an immutable :class:`MatchSubgraph` for emission."""
        edge_labels = ()
        if self._edge_label_fn is not None:
            edge_labels = tuple(
                sorted(((u, v), self._edge_label_fn(u, v)) for u, v in self.edges())
            )
        return MatchSubgraph(
            vertices=tuple(self._vertices),
            edges=self.edge_set(),
            vertex_labels=self.labels(),
            edge_labels=edge_labels,
        )

    def __repr__(self) -> str:
        return f"SubgraphView({self._vertices}, {self.num_edges()} edges)"

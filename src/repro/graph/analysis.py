"""Structural analysis utilities for graphs.

Used by the dataset tests (verifying that the synthetic stand-ins have the
degree-distribution *shape* their paper counterparts are known for) and by
the examples to describe their inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.graph.adjacency import AdjacencyGraph
from repro.types import VertexId


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution statistics."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    #: max degree / mean degree — >> 1 indicates a heavy tail (hubs)
    hub_ratio: float
    #: Gini coefficient of the degree distribution in [0, 1)
    gini: float


def degree_summary(graph: AdjacencyGraph) -> DegreeSummary:
    """Compute the degree-distribution statistics of ``graph``."""
    degrees = sorted(graph.degree(v) for v in graph.vertices())
    if not degrees:
        return DegreeSummary(0, 0, 0, 0, 0.0, 0.0, 1.0, 0.0)
    n = len(degrees)
    total = sum(degrees)
    mean = total / n
    median = (
        degrees[n // 2]
        if n % 2
        else (degrees[n // 2 - 1] + degrees[n // 2]) / 2
    )
    # Gini over the sorted degree sequence.
    if total > 0:
        weighted = sum((i + 1) * d for i, d in enumerate(degrees))
        gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
    else:
        gini = 0.0
    return DegreeSummary(
        num_vertices=n,
        num_edges=graph.num_edges(),
        min_degree=degrees[0],
        max_degree=degrees[-1],
        mean_degree=mean,
        median_degree=median,
        hub_ratio=degrees[-1] / mean if mean else 1.0,
        gini=gini,
    )


def connected_components(graph: AdjacencyGraph) -> List[Set[VertexId]]:
    """All connected components, largest first."""
    seen: Set[VertexId] = set()
    components: List[Set[VertexId]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for n in graph.neighbors(v):
                if n not in comp:
                    comp.add(n)
                    stack.append(n)
        seen |= comp
        components.append(comp)
    return sorted(components, key=len, reverse=True)


def clustering_coefficient(graph: AdjacencyGraph) -> float:
    """Global clustering coefficient: 3 * triangles / open-or-closed wedges."""
    triangles = 0
    wedges = 0
    for v in graph.vertices():
        nbrs = sorted(graph.neighbors(v))
        d = len(nbrs)
        wedges += d * (d - 1) // 2
        for i in range(d):
            for j in range(i + 1, d):
                if graph.has_edge(nbrs[i], nbrs[j]):
                    triangles += 1
    # each triangle counted once per corner = 3 times
    return triangles / wedges if wedges else 0.0


def degree_histogram(graph: AdjacencyGraph) -> Dict[int, int]:
    """degree -> number of vertices with that degree."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist

"""End-to-end system wiring — the architecture of the paper's Figure 2.

:class:`TesseractSystem` assembles all components: data sources submit
updates to the **ingress node**, which applies them to the **sharded,
multiversioned graph store** and enqueues them in the **work queue**;
**distributed workers** explore each update and publish match deltas to the
**pub/sub system**; subscribers run **output processing and aggregation**
pipelines over the delta stream.

Usage::

    system = TesseractSystem(CliqueMining(4), window_size=100, num_workers=4)
    counts = system.output_stream().count()
    system.submit_many(Update.add_edge(u, v) for u, v in edges)
    system.flush()                 # apply windows + run workers + dispatch
    counts.value()                 # live mining result
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core.api import MiningAlgorithm
from repro.core.metrics import Metrics
from repro.dataflow.stream import Stream
from repro.dataflow.watermark import WatermarkTracker
from repro.graph.adjacency import AdjacencyGraph
from repro.runtime.fault import FaultInjector
from repro.runtime.worker import WorkerPool
from repro.store.api import GraphStore, make_store
from repro.streaming.ingress import IngressNode
from repro.streaming.pubsub import PubSub, Subscription, Topic
from repro.streaming.queue import WorkQueue
from repro.types import MatchDelta, Timestamp, Update


class TesseractSystem:
    """The complete Tesseract deployment in one object."""

    def __init__(
        self,
        algorithm: MiningAlgorithm,
        window_size: int = 100,
        num_workers: int = 1,
        num_shards: int = 8,
        threaded: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        gc_enabled: bool = False,
        initial_graph: Optional[AdjacencyGraph] = None,
        store: "str | GraphStore | None" = None,
        trace_tasks: bool = False,
    ) -> None:
        self.algorithm = algorithm
        self.threaded = threaded
        if isinstance(store, GraphStore):
            if initial_graph is not None:
                raise ValueError("pass either initial_graph or store, not both")
            self.store = store
        else:
            self.store = make_store(
                store if store is not None else "mv",
                num_shards=num_shards,
                graph=initial_graph,
            )
        self.queue = WorkQueue()
        self.ingress = IngressNode(
            self.store, self.queue, window_size=window_size, gc_enabled=gc_enabled
        )
        self.pubsub = PubSub()
        ordered = algorithm.ordered_output
        self.topic: Topic = self.pubsub.topic("matches", ordered=ordered)
        self.watermarks = WatermarkTracker()
        self.pool = WorkerPool(
            self.store,
            algorithm,
            self.queue,
            self.topic,
            num_workers=num_workers,
            fault_injector=fault_injector,
            trace_tasks=trace_tasks,
        )
        self._streams: List[Stream] = []
        self._dispatch_cursor: Optional[Subscription] = None

    @classmethod
    def from_checkpoint(
        cls, path, algorithm: MiningAlgorithm, **kwargs
    ) -> "TesseractSystem":
        """Recover a deployment from a store checkpoint (paper §5.5).

        The restored system resumes timestamping where the checkpoint left
        off; replay any work-queue tail separately if updates were queued
        but unprocessed at crash time.
        """
        from repro.store.checkpoint import restore_store

        return cls(algorithm, store=restore_store(path), **kwargs)

    # -- input side ------------------------------------------------------

    def submit(self, update: Update) -> None:
        self.ingress.submit(update)

    def submit_many(self, updates: Iterable[Update]) -> None:
        self.ingress.submit_many(updates)

    def flush(self) -> None:
        """Close open windows, run workers to drain the queue, dispatch output."""
        self.ingress.flush()
        self.run_workers()

    def run_workers(self) -> None:
        """Process everything currently in the work queue."""
        if self.threaded:
            self.pool.run_threaded()
        else:
            self.pool.run_serial()
        # The queue's low watermark guarantees every update at or below it
        # has been emitted; release ordered output up to that point.
        self.topic.advance_watermark(self.queue.low_watermark())
        self._dispatch()

    # -- output side -----------------------------------------------------

    def subscribe(self) -> Subscription:
        """Raw subscription to the match-delta topic."""
        return self.topic.subscribe()

    def output_stream(self) -> Stream:
        """A dataflow source fed automatically after each flush."""
        stream = Stream.source()
        self._streams.append(stream)
        if self._dispatch_cursor is None:
            self._dispatch_cursor = self.topic.subscribe()
        return stream

    def _dispatch(self) -> None:
        if self._dispatch_cursor is None:
            return
        batch: List[MatchDelta] = self._dispatch_cursor.drain()
        for stream in self._streams:
            stream.push_deltas(batch)

    # -- introspection -------------------------------------------------------

    def snapshot(self, ts: Optional[Timestamp] = None) -> AdjacencyGraph:
        """Materialize the graph as of ``ts`` (default: latest)."""
        return self.store.as_adjacency(
            self.store.latest_timestamp if ts is None else ts
        )

    def metrics(self) -> Metrics:
        return self.pool.merged_metrics()

    def stats(self):
        """Aggregate system statistics (see :mod:`repro.runtime.stats`)."""
        from repro.runtime.stats import SystemStats

        return SystemStats.collect(self)

    def deltas(self, by_timestamp: bool = False) -> List[MatchDelta]:
        """All deltas published so far (visible records only).

        Topic order equals timestamp order for serial workers and for
        ordered topics; threaded workers publish to an *unordered* topic as
        they finish, so windows interleave — pass ``by_timestamp=True``
        (stable sort) before replaying such a stream with
        :func:`~repro.core.engine.collect_matches`.
        """
        records = list(self.topic.visible_records())
        if by_timestamp:
            records.sort(key=lambda d: d.timestamp)
        return records

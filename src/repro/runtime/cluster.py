"""Cluster description and simulation results.

The paper's testbed is 8 machines with 16 cores and 128 GB each (section
6.1).  We cannot observe real multi-node scaling from pure Python (see
DESIGN.md "Substitutions"), so benchmarks execute exploration tasks once,
record per-task traces, and replay them against a :class:`ClusterSpec`
using :class:`~repro.runtime.costmodel.ClusterSimulator`.  All costs are in
abstract *work units* — the same units as
:meth:`repro.core.metrics.Metrics.work_units` — and benchmarks calibrate
units/second from the measured single-threaded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class ClusterSpec:
    """A simulated deployment."""

    num_machines: int = 8
    workers_per_machine: int = 16
    #: work units to pull one update from the (single, serialized) work queue
    dequeue_cost: float = 0.5
    #: work units per emitted match delta
    emit_cost: float = 0.2
    #: work units per vertex record fetched from a remote store shard
    store_fetch_cost: float = 4.0
    #: vertex records each machine's in-memory graph cache can hold
    cache_capacity_per_machine: int = 1_000_000

    def __post_init__(self) -> None:
        if self.num_machines < 1 or self.workers_per_machine < 1:
            raise ValueError("cluster must have at least one worker")

    @property
    def total_workers(self) -> int:
        return self.num_machines * self.workers_per_machine


@dataclass
class SimResult:
    """Outcome of replaying a task trace on a simulated cluster."""

    spec: ClusterSpec
    makespan_units: float = 0.0
    total_work_units: float = 0.0
    total_tasks: int = 0
    total_deltas: int = 0
    cache_misses: int = 0
    cache_hits: int = 0
    per_worker_busy: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each worker spent busy."""
        if not self.per_worker_busy or self.makespan_units == 0:
            return 0.0
        return sum(self.per_worker_busy) / (
            len(self.per_worker_busy) * self.makespan_units
        )

    def speedup_over(self, baseline: "SimResult") -> float:
        if self.makespan_units == 0:
            return float("inf")
        return baseline.makespan_units / self.makespan_units

    def seconds(self, units_per_second: float) -> float:
        """Convert the makespan to seconds given a calibration factor."""
        if units_per_second <= 0:
            raise ValueError("units_per_second must be positive")
        return self.makespan_units / units_per_second

    def output_rate(self, units_per_second: float) -> float:
        """Match deltas emitted per second at the calibrated speed."""
        secs = self.seconds(units_per_second)
        return self.total_deltas / secs if secs else float("inf")

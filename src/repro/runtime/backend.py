"""Pluggable execution backends: one task-running contract, four executors.

Historically the repo had four disjoint ways to execute exploration tasks —
the serial :class:`~repro.core.engine.TesseractEngine`, the threaded
:class:`~repro.runtime.worker.WorkerPool`, the process-based
``MultiprocessRunner``, and the :class:`~repro.runtime.distributed.\
SimulatedDeployment` — each re-implementing queue draining, window handling,
and metrics accumulation.  This module collapses the executor side of that
into one interface mirroring the paper's own layering: a single mining
engine over interchangeable deployments (EuroSys 2021 §4–5).

An :class:`ExecutionBackend` runs a batch of independent exploration tasks
(each is one ``(timestamp, EdgeUpdate)`` pair — tasks are independent by
construction, paper §4.5) and returns the match deltas *in task order*, so
every backend produces a byte-identical delta stream for the same input.
The streaming loop that feeds backends window by window lives in
:class:`~repro.runtime.session.StreamingSession`.

Backends:

``serial``
    One engine, one thread.  The reference executor; lowest overhead for
    small windows and the baseline all others must match exactly.

``thread``
    N worker engines on real threads.  Architecturally faithful to the
    paper's worker loop but GIL-bound: use it to exercise concurrency
    (locking, nondeterministic interleaving) rather than for speedup.

``process``
    N worker processes, each holding its own copy of the multiversioned
    store (the paper's workers likewise keep an in-memory graph copy and no
    shared soft state).  Real CPU parallelism; the store copy is re-shipped
    on every batch, so it is safe for *evolving* stores, not just
    pre-applied static batches.

``simulated``
    Executes every task once on one host while routing store reads through
    per-machine :class:`~repro.store.remote.RemoteStoreClient` caches and
    advancing per-worker simulated clocks — real deltas, estimated
    multi-machine makespan.
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import os
import threading
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.api import MiningAlgorithm
from repro.core.engine import TesseractEngine
from repro.core.metrics import Metrics
from repro.store.api import GraphStore
from repro.telemetry import (
    NULL_PROFILE,
    NULL_REGISTRY,
    NULL_TELEMETRY,
    ExplorationProfile,
    MetricsRegistry,
    Telemetry,
    ensure,
)
from repro.telemetry.bridge import net_delta_to_registry
from repro.types import EdgeUpdate, MatchDelta, TaskTrace, Timestamp

#: One unit of backend work: explore a single edge update at a timestamp.
Task = Tuple[Timestamp, EdgeUpdate]

#: Names accepted by :func:`make_backend` and the CLI ``--backend`` flag.
BACKEND_NAMES = ("serial", "thread", "process", "simulated")


class ExecutionBackend(abc.ABC):
    """Runs batches of independent exploration tasks over a shared store.

    The contract every adapter honours:

    * :meth:`run_tasks` returns deltas in task order — identical across
      backends for identical inputs;
    * :meth:`metrics` returns a merged, cumulative :class:`Metrics` over
      all workers, deterministic regardless of execution interleaving;
    * workers share no soft state; the backend may be invoked repeatedly
      as the underlying store evolves between calls.

    Telemetry: each worker engine records into its **own**
    :class:`~repro.telemetry.MetricsRegistry` (so concurrent workers never
    contend on shared instruments); :meth:`worker_registries` exposes them
    for order-independent merging at snapshot time.  Spans from every
    worker land on the session's shared (thread-safe) tracer; the process
    backend ships its spans back over the same channel as its merged
    metrics.
    """

    #: the registry name of this backend ("serial", "thread", ...)
    name: str = "?"

    @abc.abstractmethod
    def run_tasks(self, tasks: Sequence[Task]) -> List[MatchDelta]:
        """Execute every task, returning their deltas concatenated in order."""

    @abc.abstractmethod
    def metrics(self) -> Metrics:
        """Merged cumulative metrics of all workers (a fresh snapshot)."""

    def traces(self) -> List[TaskTrace]:
        """Per-task traces, if tracing was enabled (default: none)."""
        return []

    def worker_registries(self) -> List[MetricsRegistry]:
        """Per-worker metric registries to merge at snapshot time."""
        return []

    def worker_profiles(self) -> List[ExplorationProfile]:
        """Per-worker exploration profiles to merge at collection time.

        Profiles merge key-wise (per attributed update), so the merged
        result is identical regardless of which worker ran which task —
        the same order-independence contract as :meth:`worker_registries`.
        """
        return []

    @staticmethod
    def _worker_profile(profile_on: bool) -> ExplorationProfile:
        """A per-worker accumulator, or the shared null object when off."""
        return ExplorationProfile() if profile_on else NULL_PROFILE

    @staticmethod
    def _worker_telemetry(telemetry) -> "Telemetry":
        """A per-worker telemetry view: shared tracer, private registry.

        Disabled telemetry coalesces onto :data:`NULL_TELEMETRY`, so
        callers branch on ``.enabled`` rather than ``is None`` (RL004).
        """
        telemetry = ensure(telemetry)
        if not telemetry.enabled:
            return telemetry
        return Telemetry(tracer=telemetry.tracer, registry=MetricsRegistry())

    def record_window(self, wall_seconds: float) -> None:
        """Charge one processed window's wall time to the metrics sink.

        Called by the streaming loop after each window so ``metrics()``
        carries cumulative wall time and per-window latency samples, the
        way the serial engine's own window loop always accounted them.
        """

    def close(self) -> None:
        """Release worker resources; the backend may not be reused after."""


class SerialBackend(ExecutionBackend):
    """The reference executor: one :class:`TesseractEngine`, in order."""

    name = "serial"

    def __init__(
        self,
        store: GraphStore,
        algorithm: MiningAlgorithm,
        metrics: Optional[Metrics] = None,
        trace_tasks: bool = False,
        telemetry=None,
        profile: bool = False,
    ) -> None:
        self._worker_tel = self._worker_telemetry(telemetry)
        self._profile = self._worker_profile(profile)
        self.engine = TesseractEngine(
            store,
            algorithm,
            metrics=metrics,
            trace_tasks=trace_tasks,
            telemetry=self._worker_tel,
            profile=self._profile,
        )

    def worker_registries(self) -> List[MetricsRegistry]:
        return [self._worker_tel.registry] if self._worker_tel.enabled else []

    def worker_profiles(self) -> List[ExplorationProfile]:
        return [self._profile] if self._profile.enabled else []

    def run_tasks(self, tasks: Sequence[Task]) -> List[MatchDelta]:
        deltas: List[MatchDelta] = []
        for ts, update in tasks:
            deltas.extend(self.engine.process_update(ts, update))
        return deltas

    def metrics(self) -> Metrics:
        merged = Metrics()
        merged.merge(self.engine.metrics)
        return merged

    def record_window(self, wall_seconds: float) -> None:
        self.engine.metrics.record_window(wall_seconds)

    def traces(self) -> List[TaskTrace]:
        return list(self.engine.traces)


class ThreadBackend(ExecutionBackend):
    """N engines on real threads; output re-assembled in task order.

    Each worker owns an engine (no shared soft state); a shared cursor
    hands out task indices, and results land in an index-addressed slot
    table, so the emitted delta stream is independent of thread timing.
    """

    name = "thread"

    def __init__(
        self,
        store: GraphStore,
        algorithm: MiningAlgorithm,
        num_workers: int = 2,
        trace_tasks: bool = False,
        telemetry=None,
        profile: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._worker_tels = [
            self._worker_telemetry(telemetry) for _ in range(num_workers)
        ]
        self._worker_profs = [
            self._worker_profile(profile) for _ in range(num_workers)
        ]
        self.engines = [
            TesseractEngine(
                store,
                algorithm,
                metrics=Metrics(),
                trace_tasks=trace_tasks,
                telemetry=self._worker_tels[w],
                worker_label=w,
                profile=self._worker_profs[w],
            )
            for w in range(num_workers)
        ]

    def worker_registries(self) -> List[MetricsRegistry]:
        return [tel.registry for tel in self._worker_tels if tel.enabled]

    def worker_profiles(self) -> List[ExplorationProfile]:
        return [p for p in self._worker_profs if p.enabled]

    def run_tasks(self, tasks: Sequence[Task]) -> List[MatchDelta]:
        if not tasks:
            return []
        slots: List[Optional[List[MatchDelta]]] = [None] * len(tasks)
        cursor = iter(range(len(tasks)))
        cursor_lock = threading.Lock()

        def loop(worker_id: int) -> None:
            engine = self.engines[worker_id]
            while True:
                with cursor_lock:
                    index = next(cursor, None)
                if index is None:
                    return
                ts, update = tasks[index]
                slots[index] = engine.process_update(ts, update)

        threads = [
            threading.Thread(target=loop, args=(w,), name=f"backend-worker-{w}")
            for w in range(min(self.num_workers, len(tasks)))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        out: List[MatchDelta] = []
        for slot in slots:
            out.extend(slot or [])
        return out

    def metrics(self) -> Metrics:
        merged = Metrics()
        for engine in self.engines:
            merged.merge(engine.metrics)
        return merged

    def record_window(self, wall_seconds: float) -> None:
        # Wall time is a whole-pool quantity; charge it to worker 0 so the
        # merged view accumulates it exactly once.
        self.engines[0].metrics.record_window(wall_seconds)

    def traces(self) -> List[TaskTrace]:
        out: List[TaskTrace] = []
        for engine in self.engines:
            out.extend(engine.traces)
        return out


# -- process backend ---------------------------------------------------------

# Per-process state, initialized once per worker process per batch.
_WORKER_STORE: Optional[GraphStore] = None
_WORKER_ALGORITHM: Optional[MiningAlgorithm] = None
_WORKER_TELEMETRY_ON: bool = False
_WORKER_PROFILE_ON: bool = False


def _init_process_worker(
    store: GraphStore,
    algorithm: MiningAlgorithm,
    telemetry_on: bool = False,
    profile_on: bool = False,
) -> None:
    global _WORKER_STORE, _WORKER_ALGORITHM, _WORKER_TELEMETRY_ON
    global _WORKER_PROFILE_ON
    _WORKER_STORE = store
    _WORKER_ALGORITHM = algorithm
    _WORKER_TELEMETRY_ON = telemetry_on
    _WORKER_PROFILE_ON = profile_on


def _run_process_task(task: Tuple[int, Timestamp, EdgeUpdate]):
    index, ts, update = task
    assert _WORKER_STORE is not None and _WORKER_ALGORITHM is not None
    # A fresh engine per task gives a per-task Metrics (and, with telemetry
    # on, per-task spans and a per-task registry) we can ship back and merge
    # deterministically (in task order) on the caller side — spans travel
    # over the exact same channel as the merged metrics.
    telemetry = Telemetry(trace_capacity=256) if _WORKER_TELEMETRY_ON else NULL_TELEMETRY
    profile = ExplorationProfile() if _WORKER_PROFILE_ON else NULL_PROFILE
    engine = TesseractEngine(
        _WORKER_STORE,
        _WORKER_ALGORITHM,
        telemetry=telemetry,
        worker_label=os.getpid(),
        profile=profile,
    )
    deltas = engine.process_update(ts, update)
    if _WORKER_TELEMETRY_ON:
        # Ship this reconnected client's wire activity since the last task
        # as additive gauges: the pickle-reconnect gave this worker a fresh
        # NetLog, so without the per-task delta the worker's RPC counts
        # would silently vanish from the session's repro_net_* gauges.
        net_delta_to_registry(telemetry.registry, _WORKER_STORE)
    # With telemetry off the null tracer ships an empty span list and the
    # null registry merges as a no-op — one return shape either way.  The
    # profile slot likewise ships the inert null object when profiling is
    # off (it is stateless, so it pickles to another inert instance).
    return (
        index,
        deltas,
        engine.metrics,
        telemetry.tracer.records(),
        telemetry.registry,
        profile,
    )


class ProcessBackend(ExecutionBackend):
    """N worker processes, each with its own store copy; real parallelism.

    The store snapshot is shipped to each process at the start of every
    batch (fork or pickle), so batches may run against an *evolving* store:
    a new batch always sees the store's current version history.  Batches
    below ``min_parallel`` tasks run inline on a fallback engine that
    shares this backend's metrics — counters never silently vanish.
    """

    name = "process"

    def __init__(
        self,
        store: GraphStore,
        algorithm: MiningAlgorithm,
        num_processes: Optional[int] = None,
        metrics: Optional[Metrics] = None,
        min_parallel: int = 4,
        telemetry=None,
        profile: bool = False,
    ) -> None:
        self.store = store
        self.algorithm = algorithm
        self.num_processes = num_processes or max(1, (os.cpu_count() or 2) - 1)
        self.min_parallel = min_parallel
        self._metrics = metrics if metrics is not None else Metrics()
        self.telemetry = ensure(telemetry)
        self._worker_tel = self._worker_telemetry(telemetry)
        # Registry accumulating what worker processes ship back per batch;
        # the null registry swallows merges when telemetry is off.
        self._shipped_registry = (
            MetricsRegistry() if self.telemetry.enabled else NULL_REGISTRY
        )
        # Shipped per-task profiles merge into this accumulator, which the
        # inline fallback engine records into directly — one merged view
        # either way (the null profile swallows merges when profiling is
        # off).
        self._profile = self._worker_profile(profile)
        # The inline fallback engine accumulates into the same metrics.
        self._inline = TesseractEngine(
            store,
            algorithm,
            metrics=self._metrics,
            telemetry=self._worker_tel,
            profile=self._profile,
        )

    def run_tasks(self, tasks: Sequence[Task]) -> List[MatchDelta]:
        if not tasks:
            return []
        if self.num_processes == 1 or len(tasks) < self.min_parallel:
            out: List[MatchDelta] = []
            for ts, update in tasks:
                out.extend(self._inline.process_update(ts, update))
            return out
        indexed = [(i, ts, upd) for i, (ts, upd) in enumerate(tasks)]
        ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
        with ctx.Pool(
            processes=self.num_processes,
            initializer=_init_process_worker,
            initargs=(
                self.store,
                self.algorithm,
                self.telemetry.enabled,
                self._profile.enabled,
            ),
        ) as pool:
            results = pool.map(
                _run_process_task,
                indexed,
                chunksize=max(1, len(tasks) // (self.num_processes * 4)),
            )
        results.sort(key=lambda entry: entry[0])
        out = []
        for _, deltas, task_metrics, spans, registry, task_profile in results:
            out.extend(deltas)
            self._metrics.merge(task_metrics)
            if spans:
                # Re-parent the worker's spans under the caller's current
                # span (the session's open window span).
                self.telemetry.tracer.absorb(spans)
            self._shipped_registry.merge(registry)
            self._profile.merge(task_profile)
        return out

    def metrics(self) -> Metrics:
        merged = Metrics()
        merged.merge(self._metrics)
        return merged

    def record_window(self, wall_seconds: float) -> None:
        self._metrics.record_window(wall_seconds)

    def worker_registries(self) -> List[MetricsRegistry]:
        out = []
        if self._worker_tel.enabled:
            out.append(self._worker_tel.registry)
        if self.telemetry.enabled:
            out.append(self._shipped_registry)
        return out

    def worker_profiles(self) -> List[ExplorationProfile]:
        return [self._profile] if self._profile.enabled else []


class SimulatedBackend(ExecutionBackend):
    """Simulated multi-machine deployment behind the backend contract.

    Wraps :class:`~repro.runtime.distributed.SimulatedDeployment`: every
    task executes exactly once (deltas are exact), while store reads are
    charged per-machine fetch latency and per-worker clocks estimate the
    cluster makespan.  Worker caches are dropped between batches — cached
    vertex records are soft state (paper §5.5) and may be stale once the
    store has evolved.
    """

    name = "simulated"

    def __init__(
        self,
        store: GraphStore,
        algorithm: MiningAlgorithm,
        spec=None,
        algorithm_factory: Optional[Callable[[], MiningAlgorithm]] = None,
        fetch_costs=None,
        telemetry=None,
        profile: bool = False,
    ) -> None:
        from repro.runtime.cluster import ClusterSpec
        from repro.runtime.distributed import SimulatedDeployment
        from repro.store.remote import FetchCosts

        if spec is None:
            spec = ClusterSpec(num_machines=2, workers_per_machine=2)
        self.spec = spec
        self.deployment = SimulatedDeployment(
            store,
            algorithm_factory if algorithm_factory is not None else (lambda: algorithm),
            spec,
            fetch_costs=fetch_costs if fetch_costs is not None else FetchCosts(),
            telemetry=telemetry,
            profile=profile,
        )
        #: per-batch deployment results (makespan, utilization, fetches)
        self.results = []

    def run_tasks(self, tasks: Sequence[Task]) -> List[MatchDelta]:
        if not tasks:
            return []
        for client in self.deployment.clients:
            client.drop_cache()
        result = self.deployment.run(tasks)
        self.results.append(result)
        return result.deltas

    def metrics(self) -> Metrics:
        merged = Metrics()
        for _, worker_metrics in self.deployment._explorers:
            merged.merge(worker_metrics)
        return merged

    def record_window(self, wall_seconds: float) -> None:
        self.deployment._explorers[0][1].record_window(wall_seconds)

    def worker_registries(self) -> List[MetricsRegistry]:
        return list(self.deployment.worker_registries)

    def worker_profiles(self) -> List[ExplorationProfile]:
        return list(self.deployment.worker_profiles)

    @property
    def last_result(self):
        return self.results[-1] if self.results else None


def make_backend(
    kind: str,
    store: GraphStore,
    algorithm: MiningAlgorithm,
    *,
    num_workers: Optional[int] = None,
    metrics: Optional[Metrics] = None,
    trace_tasks: bool = False,
    spec=None,
    fetch_costs=None,
    telemetry=None,
    profile: bool = False,
) -> ExecutionBackend:
    """Construct a backend by registry name (see :data:`BACKEND_NAMES`)."""
    if kind == "serial":
        return SerialBackend(
            store,
            algorithm,
            metrics=metrics,
            trace_tasks=trace_tasks,
            telemetry=telemetry,
            profile=profile,
        )
    if kind == "thread":
        return ThreadBackend(
            store,
            algorithm,
            num_workers=num_workers or 2,
            trace_tasks=trace_tasks,
            telemetry=telemetry,
            profile=profile,
        )
    if kind == "process":
        return ProcessBackend(
            store,
            algorithm,
            num_processes=num_workers,
            metrics=metrics,
            telemetry=telemetry,
            profile=profile,
        )
    if kind == "simulated":
        return SimulatedBackend(
            store,
            algorithm,
            spec=spec,
            fetch_costs=fetch_costs,
            telemetry=telemetry,
            profile=profile,
        )
    raise ValueError(
        f"unknown backend {kind!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )

"""The unified evolving-graph pipeline: one loop, pluggable executors.

:class:`StreamingSession` owns the full loop of the paper's Figure 2 for
any execution backend: updates enter through the **ingress node**, which
sanitizes them, carves snapshot windows, applies each window atomically to
the **multiversioned store**, and appends its edge updates to the **work
queue**; the session then drains the queue window by window, fans each
window's tasks to the configured :class:`~repro.runtime.backend.\
ExecutionBackend`, merges per-worker :class:`~repro.core.metrics.Metrics`
deterministically, feeds the resulting deltas into attached **dataflow**
sinks, and records a :class:`~repro.types.WindowStats` per window.

Because the loop is wired once here, switching from a serial debug run to
a multi-process run (or a simulated cluster) is a one-argument change::

    session = StreamingSession(CliqueMining(4, min_size=3),
                               backend="process", window_size=100)
    counts = session.output_stream().count()
    session.submit_many(Update.add_edge(u, v) for u, v in edge_stream)
    session.flush()
    counts.value(), session.latency_summary().report()

Before this layer existed the process runner could only mine pre-applied
static batches; the session gives every backend — including processes —
a true streaming, window-by-window execution path.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.api import MiningAlgorithm
from repro.core.metrics import Metrics
from repro.errors import WorkerCrashed
from repro.dataflow.stream import Stream
from repro.graph.adjacency import AdjacencyGraph
from repro.runtime.backend import (
    ExecutionBackend,
    Task,
    make_backend,
)
from repro.runtime.stats import LatencySummary, summarize_latencies
from repro.store.api import GraphStore, make_store
from repro.streaming.ingress import IngressNode
from repro.streaming.queue import WorkQueue
from repro.types import MatchDelta, Timestamp, Update, WindowStats


class StreamingSession:
    """Ingress → store → queue → backend → dataflow, wired once.

    ``backend`` is either a registry name (``"serial"``, ``"thread"``,
    ``"process"``, ``"simulated"``) or a ready :class:`ExecutionBackend`
    instance (which must share this session's store).  ``store`` is
    likewise either a registry name (``"mv"``, ``"sharded"``,
    ``"remote"``, ``"net"``) or a ready :class:`~repro.store.api.\
    GraphStore`; a named store composes with ``initial_graph``, a store
    instance does not (the instance already holds its data).  A named
    store is *owned* by the session and closed by :meth:`close`;
    ``store_addr`` points the ``net`` kind at an external
    ``repro serve-store`` server instead of an embedded loopback one and
    ``store_batch`` sets that client's records-per-``multi_get`` chunk.
    """

    def __init__(
        self,
        algorithm: MiningAlgorithm,
        backend: "str | ExecutionBackend" = "serial",
        *,
        window_size: int = 100,
        num_workers: Optional[int] = None,
        num_shards: int = 8,
        initial_graph: Optional[AdjacencyGraph] = None,
        store: "str | GraphStore | None" = None,
        store_addr: Optional[str] = None,
        store_batch: Optional[int] = None,
        gc_enabled: bool = False,
        trace_tasks: bool = False,
        spec=None,
        fetch_costs=None,
        telemetry=None,
        profile: bool = False,
        fault_injector=None,
    ) -> None:
        from repro.telemetry import ensure

        self.algorithm = algorithm
        self.telemetry = ensure(telemetry)
        self.profiling = profile
        self.fault_injector = fault_injector
        if isinstance(store, GraphStore):
            if initial_graph is not None:
                raise ValueError("pass either initial_graph or store, not both")
            self.store = store
            self._owns_store = False
        else:
            self.store = make_store(
                store if store is not None else "mv",
                num_shards=num_shards,
                graph=initial_graph,
                fetch_costs=fetch_costs,
                addr=store_addr,
                batch_size=store_batch,
                telemetry=telemetry,
            )
            self._owns_store = True
        self.queue = WorkQueue(telemetry=self.telemetry)
        self.ingress = IngressNode(
            self.store,
            self.queue,
            window_size=window_size,
            gc_enabled=gc_enabled,
            telemetry=self.telemetry,
        )
        if isinstance(backend, ExecutionBackend):
            self.backend = backend
        else:
            self.backend = make_backend(
                backend,
                self.store,
                algorithm,
                num_workers=num_workers,
                trace_tasks=trace_tasks,
                spec=spec,
                fetch_costs=fetch_costs,
                telemetry=self.telemetry,
                profile=profile,
            )
        self.window_stats: List[WindowStats] = []
        self._deltas: List[MatchDelta] = []
        self._streams: List[Stream] = []
        self._c_restarts = self.telemetry.registry.counter(
            "repro_session_worker_restarts_total",
            "worker crashes recovered by queue redelivery",
        )

    # -- input side ------------------------------------------------------

    def submit(self, update: Update) -> None:
        self.ingress.submit(update)

    def submit_many(self, updates: Iterable[Update]) -> None:
        self.ingress.submit_many(updates)

    def flush(self) -> List[MatchDelta]:
        """Close open windows and run every queued window on the backend.

        Returns the deltas produced by this flush (cumulative history stays
        available via :meth:`deltas`).
        """
        self.ingress.flush()
        return self.run_pending()

    def process(self, updates: Iterable[Update]) -> List[MatchDelta]:
        """Submit a batch of updates and flush; returns the new deltas."""
        self.submit_many(updates)
        return self.flush()

    # -- the streaming loop ----------------------------------------------

    def _pending_windows(self) -> Iterator[Tuple[Timestamp, List[Task]]]:
        """Group the queue's ready items into per-timestamp task batches.

        The queue is FIFO in timestamp order, so consecutive items with one
        timestamp are exactly one ingress window.
        """
        window_ts: Optional[Timestamp] = None
        tasks: List[Task] = []
        on_poll = self._on_poll if self.fault_injector is not None else None
        for item in self.queue.drain(on_poll=on_poll):
            if window_ts is not None and item.timestamp != window_ts:
                yield window_ts, tasks
                tasks = []
            window_ts = item.timestamp
            tasks.append((item.timestamp, item.update))
        if tasks:
            assert window_ts is not None
            yield window_ts, tasks

    def _on_poll(self, item) -> None:
        """Per-item fault-injection hook run inside the queue's drain loop.

        A fired crash point raises :class:`WorkerCrashed`; the counter and
        ``worker.restart`` trace marker record the recovery, then the
        exception propagates so :meth:`WorkQueue.drain` redelivers the item
        to the (logically restarted) worker.
        """
        try:
            self.fault_injector.on_task_start(0, item.offset)
        except WorkerCrashed:
            self._c_restarts.inc()
            now = time.perf_counter()
            self.telemetry.tracer.record(
                "worker.restart", now, now, offset=item.offset, ts=item.timestamp
            )
            raise

    def run_pending(self) -> List[MatchDelta]:
        """Drain queued windows through the backend; dispatch to sinks.

        With telemetry enabled each window runs inside an *anchored*
        ``window`` span, so task spans opened on worker threads (whose span
        stacks are empty) still parent under it.
        """
        new_deltas: List[MatchDelta] = []
        tracer = self.telemetry.tracer
        for ts, tasks in self._pending_windows():
            with tracer.span(
                "window", anchored=True, ts=ts, updates=len(tasks)
            ) as span:
                start = time.perf_counter()
                deltas = self.backend.run_tasks(tasks)
                elapsed = time.perf_counter() - start
                span.set(deltas=len(deltas), seconds=elapsed)
            self.backend.record_window(elapsed)
            self.window_stats.append(
                WindowStats(
                    timestamp=ts,
                    num_updates=len(tasks),
                    num_new=sum(1 for d in deltas if d.is_new()),
                    num_rem=sum(1 for d in deltas if d.is_rem()),
                    wall_seconds=elapsed,
                )
            )
            new_deltas.extend(deltas)
            # No later task reads snapshots below this window; let the
            # store retire read-cache entries for them.
            self.store.window_completed(ts)
        if new_deltas or self._streams:
            for stream in self._streams:
                stream.push_deltas(new_deltas)
        self._deltas.extend(new_deltas)
        return new_deltas

    # -- output side -----------------------------------------------------

    def output_stream(self) -> Stream:
        """A dataflow source fed automatically after each flush.

        With telemetry enabled the stream (and every operator later
        attached to it) counts its records in
        ``repro_dataflow_records_total{operator=...}``.
        """
        stream = Stream.source()
        if self.telemetry.enabled:
            stream.bind_telemetry(self.telemetry.registry, operator="source")
        self._streams.append(stream)
        return stream

    def deltas(self) -> List[MatchDelta]:
        """Every delta emitted so far, in window / task order."""
        return list(self._deltas)

    def live_matches(self) -> set:
        """Replay the delta history into the current live match set."""
        from repro.core.engine import collect_matches

        return collect_matches(self._deltas)

    # -- introspection ---------------------------------------------------

    def metrics(self) -> Metrics:
        """Merged worker metrics, including per-window wall-time samples.

        Backends run *tasks*; the session measures each window's wall time
        and charges it back via :meth:`ExecutionBackend.record_window`, so
        the merged view carries cumulative seconds and the latency multiset.
        """
        return self.backend.metrics()

    def latency_summary(self) -> LatencySummary:
        """p50/p95/p99/max over this session's per-window wall seconds."""
        return summarize_latencies([w.wall_seconds for w in self.window_stats])

    def collect_registry(self):
        """A fresh :class:`~repro.telemetry.MetricsRegistry` snapshot.

        Builds a new registry on every call (so it is idempotent): the
        session's live registry and every backend worker registry are
        merged in (order-independent), then the engine's merged
        :class:`Metrics`, the ingress node's net counters, and the
        per-window stats are bridged on top.  Works even with telemetry
        disabled — the bridged portions come from state the pipeline
        always maintains.
        """
        from repro.runtime.stats import window_stats_to_registry
        from repro.telemetry import MetricsRegistry
        from repro.telemetry.bridge import (
            ingress_to_registry,
            metrics_to_registry,
            store_to_registry,
        )

        out = MetricsRegistry()
        if self.telemetry.enabled:
            out.merge(self.telemetry.registry)
            for registry in self.backend.worker_registries():
                out.merge(registry)
        metrics_to_registry(out, self.metrics())
        ingress_to_registry(out, self.ingress)
        store_to_registry(out, self.store)
        window_stats_to_registry(out, self.window_stats)
        return out

    def collect_profile(self):
        """Merged :class:`~repro.telemetry.ExplorationProfile` snapshot.

        Builds a fresh profile on every call (idempotent) by merging the
        backend's per-worker profiles key-wise; the merge is commutative,
        so the result is independent of worker scheduling.  Returns an
        empty profile when the session was built without ``profile=True``.
        """
        from repro.telemetry import ExplorationProfile

        merged = ExplorationProfile()
        for worker_profile in self.backend.worker_profiles():
            merged.merge(worker_profile)
        return merged

    def run_report(self, top_k: int = 5):
        """A :class:`~repro.telemetry.report.RunReport` for this session."""
        from repro.telemetry.report import build_report

        return build_report(
            self.collect_profile(),
            self.window_stats,
            meta={
                "backend": self.backend.name,
                "store": self.store.kind,
                "algorithm": type(self.algorithm).__name__,
            },
            store_stats=self.store.store_stats(),
            top_k=top_k,
        )

    def export_trace(self, out) -> int:
        """Write the buffered trace as JSON lines; returns spans written."""
        return self.telemetry.tracer.export_jsonl(out)

    def export_folded(self, out) -> int:
        """Write the buffered trace as folded stacks; returns stack count.

        The folded-stack (flamegraph) format is one ``root;child;leaf N``
        line per distinct stack; see :mod:`repro.telemetry.flame`.
        """
        from repro.telemetry.flame import export_folded

        return export_folded(self.telemetry.tracer.records(), out)

    def snapshot(self, ts: Optional[Timestamp] = None) -> AdjacencyGraph:
        """Materialize the graph as of ``ts`` (default: latest)."""
        return self.store.as_adjacency(
            self.store.latest_timestamp if ts is None else ts
        )

    def close(self) -> None:
        self.backend.close()
        if self._owns_store:
            self.store.close()

    # -- static execution ------------------------------------------------

    @classmethod
    def run_static(
        cls,
        graph: AdjacencyGraph,
        algorithm: MiningAlgorithm,
        backend: "str | ExecutionBackend" = "serial",
        **kwargs,
    ) -> List[MatchDelta]:
        """Mine a static graph through the full pipeline, on any backend.

        Mirrors :meth:`TesseractEngine.run_static` (paper §6.2.1): every
        edge becomes an addition update in one snapshot window, and the
        NEW deltas are exactly the match set — but here the window flows
        through ingress, queue, and the chosen backend.
        """
        session = cls(
            algorithm,
            backend,
            window_size=max(1, graph.num_edges()),
            **kwargs,
        )
        for v in sorted(graph.vertices()):
            session.submit(Update.add_vertex(v, graph.vertex_label(v)))
        session.submit_many(
            Update.add_edge(u, v, graph.edge_label(u, v))
            for u, v in graph.sorted_edges()
        )
        deltas = session.flush()
        session.close()
        return deltas

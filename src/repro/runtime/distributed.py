"""Simulated distributed deployment: real execution, simulated clocks.

The trace-replay simulator (:mod:`repro.runtime.costmodel`) answers "how
would this recorded work schedule onto N machines".  This module is the
complementary construction: it *actually executes* every exploration task,
once, while routing all store reads through per-machine
:class:`~repro.store.remote.RemoteStoreClient` instances and advancing
per-worker simulated clocks from the measured work and fetch latencies.

Because exploration tasks are independent (paper §4.5), executing them in
worker-clock order on one host is behaviourally identical to a real
cluster run; the output deltas are exact, and the makespan estimate is
grounded in per-task *measured* costs rather than modeled work units.
Agreement between this simulator and the trace-replay one (they share no
code path) is itself a consistency check, asserted in the benchmarks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import MiningAlgorithm
from repro.core.explore import Explorer
from repro.core.metrics import Metrics
from repro.runtime.cluster import ClusterSpec
from repro.store.api import GraphStore
from repro.store.remote import FetchCosts, RemoteStoreClient
from repro.store.snapshot import ExplorationView
from repro.types import EdgeUpdate, MatchDelta, Timestamp


@dataclass
class DeploymentResult:
    """Outcome of a simulated deployment run."""

    deltas: List[MatchDelta]
    makespan_seconds: float
    total_busy_seconds: float
    tasks: int
    per_machine_fetches: Dict[int, int]
    per_worker_busy: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan the workers spent busy."""
        if not self.per_worker_busy or self.makespan_seconds == 0:
            return 0.0
        return self.total_busy_seconds / (
            len(self.per_worker_busy) * self.makespan_seconds
        )

    def speedup_over(self, other: "DeploymentResult") -> float:
        return other.makespan_seconds / self.makespan_seconds


class SimulatedDeployment:
    """Executes tasks across simulated machines with per-machine caches."""

    def __init__(
        self,
        store: GraphStore,
        algorithm_factory,
        spec: ClusterSpec,
        fetch_costs: FetchCosts = FetchCosts(),
        seconds_per_work_unit: float = 2e-6,
        dequeue_seconds: float = 1e-6,
        emit_seconds: float = 0.5e-6,
        telemetry=None,
        profile: bool = False,
    ) -> None:
        from repro.telemetry import (
            ExplorationProfile,
            MetricsRegistry,
            Telemetry,
            ensure,
        )

        self.store = store
        self.spec = spec
        self.fetch_costs = fetch_costs
        self.seconds_per_work_unit = seconds_per_work_unit
        self.dequeue_seconds = dequeue_seconds
        self.emit_seconds = emit_seconds
        self.telemetry = ensure(telemetry)
        # One store client per machine (its workers share the cache).
        self.clients = [
            RemoteStoreClient(
                store,
                costs=fetch_costs,
                cache_capacity=spec.cache_capacity_per_machine,
            )
            for _ in range(spec.num_machines)
        ]
        # One explorer (+ metrics) per worker: no shared soft state.  With
        # telemetry on, each worker also gets its own registry (merged
        # order-independently at snapshot time) on the shared tracer.
        self._explorers = []
        self.worker_registries: List[MetricsRegistry] = []
        # One exploration profile per worker, like the registries: merged
        # key-wise (order-independently) by the session at collection time.
        self.worker_profiles: List[ExplorationProfile] = []
        for _ in range(spec.total_workers):
            metrics = Metrics()
            if self.telemetry.enabled:
                worker_tel = Telemetry(
                    tracer=self.telemetry.tracer, registry=MetricsRegistry()
                )
                self.worker_registries.append(worker_tel.registry)
            else:
                worker_tel = None
            if profile:
                worker_profile = ExplorationProfile()
                self.worker_profiles.append(worker_profile)
            else:
                worker_profile = None
            self._explorers.append(
                (
                    Explorer(
                        algorithm_factory(),
                        metrics=metrics,
                        telemetry=worker_tel,
                        profile=worker_profile,
                    ),
                    metrics,
                )
            )

    def run(
        self, tasks: Sequence[Tuple[Timestamp, EdgeUpdate]]
    ) -> DeploymentResult:
        """Process (timestamp, update) tasks; dynamic earliest-clock pull."""
        spec = self.spec
        # (clock, worker_id) min-heap: the earliest-idle worker pulls next.
        idle: List[Tuple[float, int]] = [
            (0.0, w) for w in range(spec.total_workers)
        ]
        heapq.heapify(idle)
        busy = [0.0] * spec.total_workers
        queue_free_at = 0.0
        deltas: List[MatchDelta] = []
        tracer = self.telemetry.tracer
        traced = self.telemetry.enabled
        for ts, update in tasks:
            clock, worker = heapq.heappop(idle)
            machine = worker // spec.workers_per_machine
            client = self.clients[machine]
            explorer, metrics = self._explorers[worker]
            start = max(clock, queue_free_at)
            queue_free_at = start + self.dequeue_seconds

            work_before = metrics.work_units()
            fetch_before = client.log.simulated_seconds

            def run_one(
                # bind per-iteration state eagerly (B023): the closure is
                # invoked inside this iteration, but late binding would be
                # an easy bug to introduce when refactoring the span logic
                explorer=explorer,
                client=client,
                metrics=metrics,
                ts=ts,
                update=update,
                work_before=work_before,
                fetch_before=fetch_before,
            ):
                out = explorer.explore_update(ExplorationView(client, ts), update)
                return out, (
                    self.dequeue_seconds
                    + (metrics.work_units() - work_before)
                    * self.seconds_per_work_unit
                    + (client.log.simulated_seconds - fetch_before)
                    + len(out) * self.emit_seconds
                )

            if traced:
                with tracer.span(
                    "task",
                    ts=ts,
                    u=update.u,
                    v=update.v,
                    added=update.added,
                    worker=worker,
                    machine=machine,
                ) as span:
                    out, duration = run_one()
                    span.set(deltas=len(out), simulated_seconds=duration)
            else:
                out, duration = run_one()
            deltas.extend(out)
            busy[worker] += duration
            heapq.heappush(idle, (start + duration, worker))
        makespan = max(clock for clock, _ in idle) if tasks else 0.0
        return DeploymentResult(
            deltas=deltas,
            makespan_seconds=makespan,
            total_busy_seconds=sum(busy),
            tasks=len(tasks),
            per_machine_fetches={
                m: client.log.fetches for m, client in enumerate(self.clients)
            },
            per_worker_busy=busy,
        )


def queue_tasks(queue) -> List[Tuple[Timestamp, EdgeUpdate]]:
    """Drain a work queue into a task list (acking every item)."""
    return [(item.timestamp, item.update) for item in queue.drain()]

"""Deterministic cluster simulator: replays task traces on N machines.

Exploration tasks are provably independent (paper section 4.5), so
multi-machine behaviour reduces to scheduling plus data movement.  The
simulator models:

* **dynamic work assignment** — an idle worker pulls the next update from
  the single FIFO queue; queue pulls are serialized (one dequeue at a
  time), which contributes the small sublinearity the paper observes in
  Figure 6's "other" category;
* **store fetches with per-machine caching** — each machine keeps an LRU
  cache of vertex records; a task's touched vertices that miss the cache
  cost ``store_fetch_cost`` each.  More machines mean more aggregate cache,
  which is the paper's explanation for the superlinear scaling on the DC
  dataset (section 6.5.1);
* **emit cost** per match delta.

All times are in work units (see :class:`~repro.runtime.cluster.ClusterSpec`).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.cluster import ClusterSpec, SimResult
from repro.runtime.scheduler import DynamicScheduler
from repro.types import TaskTrace


class _MachineCache:
    """LRU set of vertex ids cached on one machine."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def access(self, vertex: int) -> bool:
        """Touch a vertex record; returns True on hit."""
        if vertex in self._entries:
            self._entries.move_to_end(vertex)
            return True
        self._entries[vertex] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False


class ClusterSimulator:
    """Replays a task trace against a cluster spec."""

    def __init__(self, spec: ClusterSpec, scheduler: Optional[object] = None) -> None:
        self.spec = spec
        self.scheduler = scheduler if scheduler is not None else DynamicScheduler()

    def simulate(self, tasks: Sequence[TaskTrace]) -> SimResult:
        """Schedule the task trace on the cluster; returns the makespan and
        cache/queue accounting (see the module docstring for the model)."""
        spec = self.spec
        result = SimResult(spec=spec)
        num_workers = spec.total_workers
        worker_available = [0.0] * num_workers
        worker_busy = [0.0] * num_workers
        caches = [
            _MachineCache(spec.cache_capacity_per_machine)
            for _ in range(spec.num_machines)
        ]
        queue_free_at = 0.0  # the single queue serializes dequeues

        for task_index, task in enumerate(tasks):
            worker = self.scheduler.select(task, task_index, worker_available)
            machine = worker // spec.workers_per_machine
            # Dequeue: the worker must wait for the queue to be free.
            start = max(worker_available[worker], queue_free_at)
            queue_free_at = start + spec.dequeue_cost
            # Store fetches go through this machine's cache.
            fetch_units = 0.0
            cache = caches[machine]
            for v in sorted(task.touched_vertices):
                if cache.access(v):
                    result.cache_hits += 1
                else:
                    result.cache_misses += 1
                    fetch_units += spec.store_fetch_cost
            duration = (
                spec.dequeue_cost
                + fetch_units
                + task.work
                + spec.emit_cost * task.num_deltas
            )
            worker_available[worker] = start + duration
            worker_busy[worker] += duration
            result.total_work_units += duration
            result.total_tasks += 1
            result.total_deltas += task.num_deltas

        result.makespan_units = max(worker_available) if tasks else 0.0
        result.per_worker_busy = worker_busy
        return result

    def scaling_curve(
        self, tasks: Sequence[TaskTrace], machine_counts: Sequence[int]
    ) -> Dict[int, SimResult]:
        """Simulate the same trace at several cluster sizes (Figure 6)."""
        out: Dict[int, SimResult] = {}
        for n in machine_counts:
            spec = ClusterSpec(
                num_machines=n,
                workers_per_machine=self.spec.workers_per_machine,
                dequeue_cost=self.spec.dequeue_cost,
                emit_cost=self.spec.emit_cost,
                store_fetch_cost=self.spec.store_fetch_cost,
                cache_capacity_per_machine=self.spec.cache_capacity_per_machine,
            )
            out[n] = ClusterSimulator(spec, self.scheduler).simulate(tasks)
        return out

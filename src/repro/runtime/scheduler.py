"""Work assignment policies for the cluster simulator.

Tesseract uses *dynamic work assignment*: any worker can process any update
because the sharded store is fully accessible, so an idle worker simply
pulls the next update (paper section 5.3).  The alternative the paper argues
against — partitioning updates across workers up front — is provided as
:class:`StaticPartitionScheduler` so the ablation benchmark can quantify the
load-balance win.

A scheduler picks the worker for the next task given each worker's
next-available time; the simulator then charges the full task duration
(dequeue + fetches + work + emits) to that worker.
"""

from __future__ import annotations

from typing import Sequence

from repro.types import TaskTrace


class DynamicScheduler:
    """FIFO queue + earliest-idle-worker assignment (the paper's scheme)."""

    name = "dynamic"

    def select(
        self, task: TaskTrace, task_index: int, worker_available: Sequence[float]
    ) -> int:
        """Pick the earliest-available worker (ties to the lowest id)."""
        best = 0
        best_time = worker_available[0]
        for w in range(1, len(worker_available)):
            if worker_available[w] < best_time:
                best_time = worker_available[w]
                best = w
        return best


class StaticPartitionScheduler:
    """Hash-partitioned assignment: each update has a fixed home worker.

    Ignores load, so a run of expensive updates landing on one worker
    creates stragglers — the imbalance Tesseract's design avoids.
    """

    name = "static-partition"

    def select(
        self, task: TaskTrace, task_index: int, worker_available: Sequence[float]
    ) -> int:
        # Partition by update edge (the natural key), not arrival index.
        key = (task.update.u * 1000003 + task.update.v) & 0x7FFFFFFF
        return key % len(worker_available)

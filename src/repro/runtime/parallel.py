"""Real parallel execution with worker processes.

The implementation now lives in :class:`~repro.runtime.backend.\
ProcessBackend`; :class:`MultiprocessRunner` remains as the historical
batch-oriented facade over it.  New code should construct a
:class:`~repro.runtime.session.StreamingSession` with ``backend="process"``
instead — that is the path with true window-by-window streaming support.

Determinism: results are collected per task and re-assembled in queue
order, so the output is byte-identical to a serial run regardless of how
tasks interleave across processes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.api import MiningAlgorithm
from repro.core.metrics import Metrics
from repro.runtime.backend import ProcessBackend
from repro.store.api import GraphStore
from repro.types import EdgeUpdate, MatchDelta, Timestamp


class MultiprocessRunner:
    """Executes a batch of exploration tasks across worker processes.

    The store snapshot is shipped to each process per batch (fork or
    pickle).  ``metrics``, when provided, accumulates the counters of every
    task — including small batches that run inline rather than forking.
    """

    def __init__(
        self,
        store: GraphStore,
        algorithm: MiningAlgorithm,
        num_processes: Optional[int] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.store = store
        self.algorithm = algorithm
        self.backend = ProcessBackend(
            store, algorithm, num_processes=num_processes, metrics=metrics
        )
        self.num_processes = self.backend.num_processes
        self.metrics = self.backend._metrics

    def run(
        self, tasks: Sequence[Tuple[Timestamp, EdgeUpdate]]
    ) -> List[MatchDelta]:
        """Process (timestamp, update) tasks; deltas return in task order."""
        return self.backend.run_tasks(tasks)

    def run_queue_snapshot(self, queue) -> List[MatchDelta]:
        """Drain a work queue in parallel (collects first, then processes)."""
        tasks = [(item.timestamp, item.update) for item in queue.drain()]
        return self.run(tasks)

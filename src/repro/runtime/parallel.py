"""Real parallel execution with worker processes.

The serial/threaded :class:`~repro.runtime.worker.WorkerPool` is
architecturally faithful but cannot speed up CPU-bound Python (the GIL);
the cluster simulator predicts scaling but does not realize it.  This
module provides the third option: a pool of *processes*, each holding a
read-only copy of the graph store (the paper's workers likewise keep an
in-memory graph copy and no shared soft state), executing exploration
tasks in parallel for a real wall-clock speedup.

Determinism: results are collected per task and re-assembled in queue
order, so the output is byte-identical to a serial run regardless of how
tasks interleave across processes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import List, Optional, Sequence, Tuple

from repro.core.api import MiningAlgorithm
from repro.core.engine import TesseractEngine
from repro.store.mvstore import MultiVersionStore
from repro.types import EdgeUpdate, MatchDelta, Timestamp

# Per-process state, initialized once per worker process.
_WORKER_ENGINE: Optional[TesseractEngine] = None


def _init_worker(store: MultiVersionStore, algorithm: MiningAlgorithm) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = TesseractEngine(store, algorithm)


def _run_task(task: Tuple[int, Timestamp, EdgeUpdate]):
    index, ts, update = task
    assert _WORKER_ENGINE is not None
    deltas = _WORKER_ENGINE.process_update(ts, update)
    return index, deltas


class MultiprocessRunner:
    """Executes a batch of exploration tasks across worker processes.

    The store snapshot is shipped to each process once (fork or pickle);
    updates must already be applied to it — this runner only *mines*, it
    does not ingest.  Suitable for large windows where task cost dominates
    the serialization overhead.
    """

    def __init__(
        self,
        store: MultiVersionStore,
        algorithm: MiningAlgorithm,
        num_processes: Optional[int] = None,
    ) -> None:
        self.store = store
        self.algorithm = algorithm
        self.num_processes = num_processes or max(1, (os.cpu_count() or 2) - 1)

    def run(
        self, tasks: Sequence[Tuple[Timestamp, EdgeUpdate]]
    ) -> List[MatchDelta]:
        """Process (timestamp, update) tasks; deltas return in task order."""
        if not tasks:
            return []
        if self.num_processes == 1 or len(tasks) < 4:
            engine = TesseractEngine(self.store, self.algorithm)
            out: List[MatchDelta] = []
            for ts, update in tasks:
                out.extend(engine.process_update(ts, update))
            return out
        indexed = [(i, ts, upd) for i, (ts, upd) in enumerate(tasks)]
        ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
        with ctx.Pool(
            processes=self.num_processes,
            initializer=_init_worker,
            initargs=(self.store, self.algorithm),
        ) as pool:
            results = pool.map(_run_task, indexed, chunksize=max(1, len(tasks) // (self.num_processes * 4)))
        results.sort(key=lambda pair: pair[0])
        out = []
        for _, deltas in results:
            out.extend(deltas)
        return out

    def run_queue_snapshot(self, queue) -> List[MatchDelta]:
        """Drain a work queue in parallel (polls first, then processes)."""
        tasks = []
        items = []
        while True:
            item = queue.poll()
            if item is None:
                break
            items.append(item)
            tasks.append((item.timestamp, item.update))
        deltas = self.run(tasks)
        for item in items:
            queue.ack(item.offset)
        return deltas

"""Aggregate system statistics — a text dashboard for a deployment.

Collects the counters every component already maintains (ingress, store,
queue, topic, workers) into one report, for operational visibility and for
the examples' output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty sequence."""
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class LatencySummary:
    """Per-window wall-time distribution (p50/p95/p99/max), merge-order safe.

    Computed from the multiset of window latencies a :class:`Metrics`
    accumulated (:attr:`~repro.core.metrics.Metrics.window_latencies`) or
    from a list of :class:`~repro.types.WindowStats`, so summaries of runs
    on different execution backends are directly comparable.  The p99
    column mirrors the paper's Figure 6, which reports 99th-percentile
    per-update latency tails.
    """

    windows: int
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    max_seconds: float
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.windows if self.windows else 0.0

    def report(self) -> str:
        if not self.windows:
            return "no windows processed"
        return (
            f"{self.windows} windows: "
            f"p50 {self.p50_seconds * 1e3:.2f}ms / "
            f"p95 {self.p95_seconds * 1e3:.2f}ms / "
            f"p99 {self.p99_seconds * 1e3:.2f}ms / "
            f"max {self.max_seconds * 1e3:.2f}ms "
            f"(total {self.total_seconds:.3f}s)"
        )


def summarize_latencies(wall_seconds: Sequence[float]) -> LatencySummary:
    """Summarize window wall times; order of samples does not matter."""
    samples = sorted(wall_seconds)
    if not samples:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return LatencySummary(
        windows=len(samples),
        p50_seconds=_percentile(samples, 0.50),
        p95_seconds=_percentile(samples, 0.95),
        p99_seconds=_percentile(samples, 0.99),
        max_seconds=samples[-1],
        total_seconds=sum(samples),
    )


def summarize_window_stats(window_stats) -> LatencySummary:
    """Summary over ``WindowStats.wall_seconds`` records."""
    return summarize_latencies([w.wall_seconds for w in window_stats])


def window_stats_to_registry(registry, window_stats) -> None:
    """Project per-window stats into session-level metrics.

    Counters are set with ``set_total`` (idempotent on re-bridge); the
    histograms are *rebuilt* from the stats list, so this must only be
    called on a freshly built registry (see
    :meth:`~repro.runtime.session.StreamingSession.collect_registry`),
    never repeatedly on a live one.
    """
    from repro.telemetry import SIZE_BUCKETS

    registry.counter(
        "repro_session_windows_total", "snapshot windows executed"
    ).set_total(len(window_stats))
    registry.counter(
        "repro_session_updates_total", "edge updates executed across windows"
    ).set_total(sum(w.num_updates for w in window_stats))
    deltas = registry.counter(
        "repro_session_deltas_total", "match deltas emitted across windows"
    )
    deltas.labels(kind="new").set_total(sum(w.num_new for w in window_stats))
    deltas.labels(kind="rem").set_total(sum(w.num_rem for w in window_stats))
    h_seconds = registry.histogram(
        "repro_session_window_seconds", "wall seconds per executed window"
    )
    h_updates = registry.histogram(
        "repro_session_window_updates",
        "edge updates per executed window",
        buckets=SIZE_BUCKETS,
    )
    for w in window_stats:
        h_seconds.observe(w.wall_seconds)
        h_updates.observe(w.num_updates)


@dataclass
class SystemStats:
    """A point-in-time snapshot of a :class:`TesseractSystem`."""

    windows_applied: int
    updates_accepted: int
    updates_dropped: int
    store_vertices: int
    store_edges: int
    store_tombstones: int
    queue_appended: int
    queue_acked: int
    low_watermark: int
    deltas_published: int
    duplicates_dropped: int
    worker_tasks: Dict[int, int]
    worker_crashes: int
    filter_calls: int
    match_calls: int
    emits: int

    @classmethod
    def collect(cls, system) -> "SystemStats":
        """Snapshot every component counter of a running TesseractSystem."""
        metrics = system.metrics()
        ts = system.store.latest_timestamp
        return cls(
            windows_applied=system.ingress.windows_applied,
            updates_accepted=system.ingress.updates_accepted,
            updates_dropped=system.ingress.updates_dropped,
            store_vertices=system.store.num_vertices(),
            store_edges=system.store.num_edges_at(ts),
            store_tombstones=system.store.tombstone_count(),
            queue_appended=system.queue.total_appended(),
            queue_acked=system.queue.acked_count(),
            low_watermark=system.queue.low_watermark(),
            deltas_published=len(system.topic.visible_records())
            + system.topic.held_count(),
            duplicates_dropped=system.topic.duplicates_dropped,
            worker_tasks={
                s.worker_id: s.tasks_processed for s in system.pool.stats
            },
            worker_crashes=sum(s.crashes for s in system.pool.stats),
            filter_calls=metrics.filter_calls,
            match_calls=metrics.match_calls,
            emits=metrics.emits,
        )

    def report(self) -> str:
        """Multi-line human-readable dashboard of this snapshot."""
        lines = [
            "tesseract system stats",
            f"  ingress    {self.windows_applied} windows, "
            f"{self.updates_accepted} accepted, {self.updates_dropped} dropped",
            f"  store      {self.store_vertices} vertices, "
            f"{self.store_edges} live edges, {self.store_tombstones} tombstones",
            f"  queue      {self.queue_acked}/{self.queue_appended} acked, "
            f"watermark ts={self.low_watermark}",
            f"  output     {self.deltas_published} deltas "
            f"({self.duplicates_dropped} duplicates dropped)",
            f"  workers    {sum(self.worker_tasks.values())} tasks over "
            f"{len(self.worker_tasks)} workers, {self.worker_crashes} crashes",
            f"  engine     {self.filter_calls} filter / {self.match_calls} match "
            f"calls, {self.emits} emits",
        ]
        return "\n".join(lines)

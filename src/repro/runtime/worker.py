"""Worker runtime: pull updates, explore, publish, ack (paper section 5).

"Each Tesseract worker executes Algorithm 2 independently.  An idle worker
picks the next update in the work queue and processes it to output the
corresponding changes in the match set."  A :class:`WorkerPool` runs N such
workers; ``run_threaded`` uses real threads (architectural fidelity — the
GIL prevents CPU speedup in pure Python), while ``run_serial`` interleaves
workers deterministically and is what tests use.

Exactly-once output: a worker publishes each delta with a dedup key of
(queue offset, sequence number) *before* acknowledging the update.  If it
crashes mid-task the update is redelivered, re-explored (exploration is
deterministic), and re-published — the pub/sub layer drops the duplicate
keys (section 5.5).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.api import MiningAlgorithm
from repro.core.engine import TesseractEngine
from repro.core.metrics import Metrics
from repro.errors import WorkerCrashed
from repro.runtime.fault import FaultInjector
from repro.store.api import GraphStore
from repro.streaming.pubsub import Topic
from repro.streaming.queue import WorkItem, WorkQueue


@dataclass
class WorkerStats:
    """Per-worker outcome counters."""

    worker_id: int
    tasks_processed: int = 0
    deltas_published: int = 0
    crashes: int = 0


class WorkerPool:
    """N independent workers sharing the queue, store, and output topic."""

    def __init__(
        self,
        store: GraphStore,
        algorithm: MiningAlgorithm,
        queue: WorkQueue,
        topic: Topic,
        num_workers: int = 1,
        fault_injector: Optional[FaultInjector] = None,
        trace_tasks: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.store = store
        self.algorithm = algorithm
        self.queue = queue
        self.topic = topic
        self.num_workers = num_workers
        self.fault_injector = fault_injector
        # One engine (and metrics) per worker: workers share no soft state.
        self.engines = [
            TesseractEngine(store, algorithm, metrics=Metrics(), trace_tasks=trace_tasks)
            for _ in range(num_workers)
        ]
        self.stats = [WorkerStats(worker_id=w) for w in range(num_workers)]
        self._publish_lock = threading.Lock()

    # -- single task -----------------------------------------------------

    def _process_item(self, worker_id: int, item: WorkItem) -> None:
        """Explore one update, publish its deltas, then ack."""
        if self.fault_injector is not None:
            try:
                self.fault_injector.on_task_start(worker_id, item.offset)
            except WorkerCrashed:
                # The worker process dies; the queue redelivers its task.
                self.stats[worker_id].crashes += 1
                self.queue.redeliver(item.offset)
                raise
        engine = self.engines[worker_id]
        deltas = engine.process_update(item.timestamp, item.update)
        with self._publish_lock:
            for seq, delta in enumerate(deltas):
                published = self.topic.publish(
                    delta,
                    timestamp=delta.timestamp,
                    dedup_key=(item.offset, seq),
                )
                if published:
                    self.stats[worker_id].deltas_published += 1
        self.queue.ack(item.offset)
        self.stats[worker_id].tasks_processed += 1

    # -- drivers ---------------------------------------------------------

    def run_serial(self) -> List[WorkerStats]:
        """Drain the queue, rotating workers deterministically.

        Crashed workers restart immediately (Spark restarts workers in the
        paper); their redelivered task is picked up by the next poll.
        """
        worker = 0
        while True:
            item = self.queue.poll()
            if item is None:
                break
            try:
                self._process_item(worker, item)
            except WorkerCrashed:
                pass  # task already redelivered; "restarted" worker continues
            worker = (worker + 1) % self.num_workers
        return self.stats

    def run_threaded(self) -> List[WorkerStats]:
        """Run each worker as a thread until the queue drains."""
        poll_lock = threading.Lock()

        def loop(worker_id: int) -> None:
            while True:
                with poll_lock:
                    item = self.queue.poll()
                if item is None:
                    if self.queue.is_drained() or self.queue.closed:
                        return
                    time.sleep(0.0005)  # another worker's task may redeliver
                    continue
                try:
                    self._process_item(worker_id, item)
                except WorkerCrashed:
                    continue  # restarted

        threads = [
            threading.Thread(target=loop, args=(w,), name=f"tesseract-worker-{w}")
            for w in range(self.num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return self.stats

    # -- aggregate metrics -----------------------------------------------

    def merged_metrics(self) -> Metrics:
        total = Metrics()
        for engine in self.engines:
            total.merge(engine.metrics)
        return total

    def all_traces(self):
        traces = []
        for engine in self.engines:
            traces.extend(engine.traces)
        return traces

"""Continuous micro-batch driver: run a deployment against a live source.

The paper's deployment consumes updates "streamed from one or multiple
data sources" indefinitely (Figure 2).  :class:`StreamDriver` is that run
loop for a :class:`~repro.runtime.coordinator.TesseractSystem`: it pulls
updates from one or more sources, lets the ingress windowing policy carve
snapshots, flushes workers after every micro-batch, and keeps
per-micro-batch statistics (the latency/throughput numbers of §6.5.4 come
from exactly this loop).

A *source* is any iterator of :class:`~repro.types.Update`; exhausted
sources are dropped and the driver stops when all sources are drained (or
when ``max_batches`` is reached).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.types import Update


@dataclass
class BatchStats:
    """Statistics for one micro-batch."""

    batch_no: int
    updates: int
    deltas: int
    wall_seconds: float
    watermark: int


@dataclass
class DriverReport:
    """Aggregated outcome of a driver run."""

    batches: List[BatchStats] = field(default_factory=list)

    @property
    def total_updates(self) -> int:
        return sum(b.updates for b in self.batches)

    @property
    def total_deltas(self) -> int:
        return sum(b.deltas for b in self.batches)

    @property
    def total_seconds(self) -> float:
        return sum(b.wall_seconds for b in self.batches)

    @property
    def throughput(self) -> float:
        """Updates processed per second across the run."""
        secs = self.total_seconds
        return self.total_updates / secs if secs else 0.0

    def mean_batch_latency(self) -> float:
        if not self.batches:
            return 0.0
        return self.total_seconds / len(self.batches)


class StreamDriver:
    """Pulls updates from sources into a system, micro-batch at a time."""

    def __init__(
        self,
        system,
        batch_size: int = 1000,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.system = system
        self.batch_size = batch_size

    def run(
        self,
        sources: Sequence[Iterable[Update]],
        max_batches: Optional[int] = None,
    ) -> DriverReport:
        """Round-robin the sources until drained (or ``max_batches``)."""
        iterators: List[Iterator[Update]] = [iter(s) for s in sources]
        report = DriverReport()
        batch_no = 0
        while iterators and (max_batches is None or batch_no < max_batches):
            batch: List[Update] = []
            while len(batch) < self.batch_size and iterators:
                exhausted = []
                for it in iterators:
                    try:
                        batch.append(next(it))
                    except StopIteration:
                        exhausted.append(it)
                    if len(batch) >= self.batch_size:
                        break
                for it in exhausted:
                    iterators.remove(it)
            if not batch:
                break
            deltas_before = len(self.system.topic.visible_records())
            start = time.perf_counter()
            self.system.submit_many(batch)
            self.system.flush()
            elapsed = time.perf_counter() - start
            report.batches.append(
                BatchStats(
                    batch_no=batch_no,
                    updates=len(batch),
                    deltas=len(self.system.topic.visible_records()) - deltas_before,
                    wall_seconds=elapsed,
                    watermark=self.system.queue.low_watermark(),
                )
            )
            batch_no += 1
        return report

"""Fault injection and exactly-once recovery (paper section 5.5).

Workers hold only soft state: a crashed worker's in-flight update is
redelivered by the durable work queue, and re-publishing its deltas is
deduplicated by the pub/sub layer, so the output of a crashy run equals the
output of a crash-free run.  :class:`FaultInjector` deterministically
injects :class:`~repro.errors.WorkerCrashed` at chosen (worker, task) points
so tests and benchmarks can exercise that path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import WorkerCrashed


@dataclass(frozen=True)
class CrashPlan:
    """Deterministic crash schedule.

    ``crash_points`` holds (worker_id, nth_task) pairs: worker ``w`` crashes
    when it picks up its ``n``-th task (0-based).  Each point fires once; the
    worker is then considered restarted (fresh, empty soft state).
    """

    crash_points: Tuple[Tuple[int, int], ...] = ()

    @staticmethod
    def every_nth(worker_id: int, n: int, times: int = 1) -> "CrashPlan":
        return CrashPlan(tuple((worker_id, n * (i + 1)) for i in range(times)))


class FaultInjector:
    """Runtime hook checked by workers before processing each task."""

    def __init__(self, plan: CrashPlan) -> None:
        self.plan = plan
        self._pending: Set[Tuple[int, int]] = set(plan.crash_points)
        self._tasks_seen: Dict[int, int] = {}
        self.crashes: List[Tuple[int, int]] = []

    def on_task_start(self, worker_id: int, offset: int) -> None:
        """Raise :class:`WorkerCrashed` if this pickup is a crash point."""
        nth = self._tasks_seen.get(worker_id, 0)
        self._tasks_seen[worker_id] = nth + 1
        if (worker_id, nth) in self._pending:
            self._pending.remove((worker_id, nth))
            self.crashes.append((worker_id, offset))
            raise WorkerCrashed(worker_id, offset)

    @property
    def crash_count(self) -> int:
        return len(self.crashes)


NO_FAULTS = FaultInjector(CrashPlan())

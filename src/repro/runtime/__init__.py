"""Distributed execution runtime: workers, scheduling, cluster simulation."""

from repro.runtime.cluster import ClusterSpec, SimResult
from repro.runtime.coordinator import TesseractSystem
from repro.runtime.costmodel import ClusterSimulator
from repro.runtime.distributed import DeploymentResult, SimulatedDeployment
from repro.runtime.driver import StreamDriver
from repro.runtime.fault import CrashPlan, FaultInjector
from repro.runtime.parallel import MultiprocessRunner
from repro.runtime.scheduler import DynamicScheduler, StaticPartitionScheduler
from repro.runtime.stats import SystemStats
from repro.runtime.worker import WorkerPool

__all__ = [
    "ClusterSpec",
    "SimResult",
    "TesseractSystem",
    "ClusterSimulator",
    "DeploymentResult",
    "SimulatedDeployment",
    "StreamDriver",
    "CrashPlan",
    "FaultInjector",
    "MultiprocessRunner",
    "DynamicScheduler",
    "StaticPartitionScheduler",
    "SystemStats",
    "WorkerPool",
]

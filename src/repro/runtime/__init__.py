"""Distributed execution runtime: backends, sessions, workers, simulation."""

from repro.runtime.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SimulatedBackend,
    ThreadBackend,
    make_backend,
)
from repro.runtime.cluster import ClusterSpec, SimResult
from repro.runtime.coordinator import TesseractSystem
from repro.runtime.costmodel import ClusterSimulator
from repro.runtime.distributed import DeploymentResult, SimulatedDeployment
from repro.runtime.driver import StreamDriver
from repro.runtime.fault import CrashPlan, FaultInjector
from repro.runtime.parallel import MultiprocessRunner
from repro.runtime.scheduler import DynamicScheduler, StaticPartitionScheduler
from repro.runtime.session import StreamingSession
from repro.runtime.stats import (
    LatencySummary,
    SystemStats,
    summarize_latencies,
    summarize_window_stats,
)
from repro.runtime.worker import WorkerPool

__all__ = [
    "BACKEND_NAMES",
    "ClusterSpec",
    "SimResult",
    "TesseractSystem",
    "ClusterSimulator",
    "DeploymentResult",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SimulatedBackend",
    "make_backend",
    "SimulatedDeployment",
    "StreamingSession",
    "StreamDriver",
    "CrashPlan",
    "FaultInjector",
    "LatencySummary",
    "MultiprocessRunner",
    "DynamicScheduler",
    "StaticPartitionScheduler",
    "SystemStats",
    "summarize_latencies",
    "summarize_window_stats",
    "WorkerPool",
]

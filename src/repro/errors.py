"""Exception hierarchy for the Tesseract reproduction.

Every error raised by the library derives from :class:`TesseractError` so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class TesseractError(Exception):
    """Base class for all errors raised by this library."""


class GraphStoreError(TesseractError):
    """Base class for graph-store failures."""


class UnknownVertexError(GraphStoreError, KeyError):
    """A vertex id was referenced that does not exist at the given snapshot."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"unknown vertex {vertex!r}")
        self.vertex = vertex


class UnknownEdgeError(GraphStoreError, KeyError):
    """An edge was referenced that does not exist at the given snapshot."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"unknown edge ({src!r}, {dst!r})")
        self.src = src
        self.dst = dst


class InvalidUpdateError(TesseractError, ValueError):
    """A graph update is malformed or violates store invariants."""


class SnapshotError(GraphStoreError):
    """A snapshot was requested at an invalid or garbage-collected timestamp."""


class QueueError(TesseractError):
    """Base class for work-queue failures."""


class QueueClosedError(QueueError):
    """An operation was attempted on a closed queue."""


class OffsetError(QueueError, ValueError):
    """A consumer referenced an invalid queue offset."""


class AlgorithmError(TesseractError):
    """A user-supplied mining algorithm violated a required property."""


class BoundednessError(AlgorithmError):
    """The algorithm's filter failed to bound exploration.

    Raised when exploration exceeds the engine's hard expansion limit, which
    indicates that the user's ``filter`` does not satisfy the boundedness
    property required by the programming model (paper section 3.1).
    """


class DataflowError(TesseractError):
    """An output-processing pipeline was misconfigured or misused."""


class AggregationError(DataflowError):
    """A custom aggregation is missing differential (NEW/REM) semantics."""


class ClusterError(TesseractError):
    """A simulated-cluster configuration or scheduling failure."""


class WorkerCrashed(TesseractError):
    """Injected worker failure used by the fault-tolerance machinery."""

    def __init__(self, worker_id: int, task_offset: int) -> None:
        super().__init__(f"worker {worker_id} crashed on task offset {task_offset}")
        self.worker_id = worker_id
        self.task_offset = task_offset


class PatternError(TesseractError, ValueError):
    """A pattern graph is malformed (e.g. disconnected or empty)."""

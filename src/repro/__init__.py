"""Tesseract reproduction: distributed, general graph pattern mining on
evolving graphs (Bindschaedler et al., EuroSys 2021).

Public API quick reference::

    from repro import (
        AdjacencyGraph, MultiVersionStore, IngressNode, WorkQueue,
        TesseractEngine, MiningAlgorithm, Update,
    )
    from repro.apps import CliqueMining, GraphKeywordSearch

See README.md for a walkthrough and DESIGN.md for the system inventory.
"""

from repro.core.api import EdgeInduced, MiningAlgorithm, VertexInduced
from repro.core.engine import TesseractEngine, collect_matches
from repro.dataflow import MOTIF
from repro.dataflow.stream import Stream
from repro.runtime.coordinator import TesseractSystem
from repro.runtime.driver import StreamDriver
from repro.core.metrics import Metrics
from repro.core.stesseract import STesseractEngine
from repro.errors import TesseractError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.pattern import Pattern
from repro.store.mvstore import MultiVersionStore
from repro.streaming.ingress import IngressNode, Window
from repro.streaming.pubsub import PubSub, Topic
from repro.streaming.queue import WorkItem, WorkQueue
from repro.types import (
    EdgeUpdate,
    MatchDelta,
    MatchStatus,
    MatchSubgraph,
    Update,
    UpdateKind,
)

__version__ = "1.0.0"

__all__ = [
    "AdjacencyGraph",
    "EdgeInduced",
    "EdgeUpdate",
    "IngressNode",
    "MatchDelta",
    "MatchStatus",
    "MatchSubgraph",
    "Metrics",
    "MiningAlgorithm",
    "MultiVersionStore",
    "Pattern",
    "PubSub",
    "MOTIF",
    "STesseractEngine",
    "Stream",
    "StreamDriver",
    "TesseractEngine",
    "TesseractSystem",
    "TesseractError",
    "Topic",
    "Update",
    "UpdateKind",
    "VertexInduced",
    "Window",
    "WorkItem",
    "WorkQueue",
    "collect_matches",
    "__version__",
]

"""Core value types shared across the library.

The types here mirror the vocabulary of the paper:

* a *graph update* (:class:`Update`) adds or deletes an edge or a vertex, or
  changes a label (section 4.1);
* the engine emits *match deltas* (:class:`MatchDelta`), 3-tuples of
  ``(timestamp, status, subgraph)`` where status is ``NEW`` or ``REM``
  (section 3.1);
* an emitted subgraph is identified by its vertices, its edges, and its
  labels (:class:`MatchSubgraph`).

Vertex ids are plain integers.  Timestamps are integers assigned by the
ingress node; all updates in a window share one timestamp (section 4.4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

VertexId = int
Timestamp = int
Label = Optional[str]

#: Edge direction relative to the normalized (min, max) endpoint order:
#: None = undirected, "fwd" = min->max, "rev" = max->min, "both" = both ways.
Direction = Optional[str]

VALID_DIRECTIONS = (None, "fwd", "rev", "both")


def normalize_direction(u: VertexId, v: VertexId, direction: Direction) -> Direction:
    """Re-express a direction given as u->v in normalized (min, max) terms."""
    if direction is None or direction == "both":
        return direction
    if direction not in ("fwd", "rev"):
        raise ValueError(f"invalid direction {direction!r}")
    return direction if u <= v else ("rev" if direction == "fwd" else "fwd")

#: An undirected edge in normalized order (smaller endpoint first).
EdgeKey = Tuple[VertexId, VertexId]


def edge_key(u: VertexId, v: VertexId) -> EdgeKey:
    """Return the normalized (sorted) key for the undirected edge ``{u, v}``."""
    return (u, v) if u <= v else (v, u)


class UpdateKind(enum.Enum):
    """The kinds of graph updates Tesseract accepts (paper section 4.1)."""

    ADD_EDGE = "add_edge"
    DELETE_EDGE = "delete_edge"
    ADD_VERTEX = "add_vertex"
    DELETE_VERTEX = "delete_vertex"
    SET_VERTEX_LABEL = "set_vertex_label"
    SET_EDGE_LABEL = "set_edge_label"


@dataclass(frozen=True)
class Update:
    """A single graph update as received from a data source.

    Vertex updates carry ``src`` only.  Edge updates carry ``src`` and
    ``dst``.  Label updates carry the new label in ``label``.  The ingress
    node translates vertex and label updates into edge additions/deletions
    before they reach workers, as described in section 4.1.
    """

    kind: UpdateKind
    src: VertexId
    dst: Optional[VertexId] = None
    label: Label = None
    #: direction of an added edge, expressed as src->dst ("fwd"), dst->src
    #: ("rev"), "both", or None for undirected
    direction: Direction = None

    def __post_init__(self) -> None:
        edge_kinds = (
            UpdateKind.ADD_EDGE,
            UpdateKind.DELETE_EDGE,
            UpdateKind.SET_EDGE_LABEL,
        )
        if self.kind in edge_kinds:
            if self.dst is None:
                raise ValueError(f"{self.kind.value} update requires dst")
            if self.src == self.dst:
                raise ValueError("self-loop edges are not supported")

    @staticmethod
    def add_edge(
        u: VertexId, v: VertexId, label: Label = None, direction: Direction = None
    ) -> "Update":
        return Update(UpdateKind.ADD_EDGE, u, v, label, direction=direction)

    @staticmethod
    def delete_edge(u: VertexId, v: VertexId) -> "Update":
        return Update(UpdateKind.DELETE_EDGE, u, v)

    @staticmethod
    def add_vertex(v: VertexId, label: Label = None) -> "Update":
        return Update(UpdateKind.ADD_VERTEX, v, label=label)

    @staticmethod
    def delete_vertex(v: VertexId) -> "Update":
        return Update(UpdateKind.DELETE_VERTEX, v)

    @staticmethod
    def set_vertex_label(v: VertexId, label: Label) -> "Update":
        return Update(UpdateKind.SET_VERTEX_LABEL, v, label=label)

    @staticmethod
    def set_edge_label(u: VertexId, v: VertexId, label: Label) -> "Update":
        return Update(UpdateKind.SET_EDGE_LABEL, u, v, label)


@dataclass(frozen=True)
class EdgeUpdate:
    """An edge-level update after ingress translation, ready for exploration.

    ``added`` is True for an edge addition and False for a deletion.  The
    normalized edge is ``(u, v)`` with ``u < v`` (update canonicality rule 1
    requires the update edge endpoints in increasing order).
    """

    u: VertexId
    v: VertexId
    added: bool
    label: Label = None
    #: normalized direction (relative to u < v); None for undirected
    direction: Direction = None

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise ValueError("EdgeUpdate endpoints must satisfy u < v")
        if self.direction not in VALID_DIRECTIONS:
            raise ValueError(f"invalid direction {self.direction!r}")

    @property
    def key(self) -> EdgeKey:
        return (self.u, self.v)


class MatchStatus(enum.Enum):
    """Differential match status (paper section 3.1)."""

    NEW = "NEW"
    REM = "REM"


@dataclass(frozen=True)
class MatchSubgraph:
    """An immutable subgraph emitted as part of a match delta.

    ``vertices`` preserves the (canonical) exploration order.  ``edges`` is a
    frozenset of normalized edge keys.  ``vertex_labels`` maps each vertex to
    its label at the relevant snapshot; unlabeled graphs map to ``None``.
    """

    vertices: Tuple[VertexId, ...]
    edges: FrozenSet[EdgeKey]
    vertex_labels: Tuple[Label, ...] = ()
    #: ((u, v), label) pairs, sorted by edge; empty unless the algorithm
    #: declared ``uses_edge_labels`` (edge labels are loaded lazily)
    edge_labels: Tuple[Tuple[EdgeKey, Label], ...] = ()

    def __post_init__(self) -> None:
        if self.vertex_labels and len(self.vertex_labels) != len(self.vertices):
            raise ValueError("vertex_labels must align with vertices")
        if self.edge_labels and len(self.edge_labels) != len(self.edges):
            raise ValueError("edge_labels must align with edges")

    @property
    def identity(self) -> Tuple[FrozenSet[VertexId], FrozenSet[EdgeKey]]:
        """Hashable identity of the match, independent of exploration order."""
        return (frozenset(self.vertices), self.edges)

    def num_vertices(self) -> int:
        return len(self.vertices)

    def num_edges(self) -> int:
        return len(self.edges)

    def label_of(self, v: VertexId) -> Label:
        if not self.vertex_labels:
            return None
        return self.vertex_labels[self.vertices.index(v)]

    def labels(self) -> Dict[VertexId, Label]:
        if not self.vertex_labels:
            return {v: None for v in self.vertices}
        return dict(zip(self.vertices, self.vertex_labels))

    def edge_label_of(self, u: VertexId, v: VertexId) -> Label:
        """Label of edge {u, v} in this match (None if unlabeled/absent)."""
        key = edge_key(u, v)
        for pair, label in self.edge_labels:
            if pair == key:
                return label
        return None


@dataclass(frozen=True)
class MatchDelta:
    """The 3-tuple streamed out by Tesseract: (timestamp, status, subgraph)."""

    timestamp: Timestamp
    status: MatchStatus
    subgraph: MatchSubgraph

    def is_new(self) -> bool:
        return self.status is MatchStatus.NEW

    def is_rem(self) -> bool:
        return self.status is MatchStatus.REM

    def sign(self) -> int:
        """+1 for NEW, -1 for REM — convenient for differential counting."""
        return 1 if self.status is MatchStatus.NEW else -1


@dataclass
class WindowStats:
    """Per-window processing statistics recorded by the engine."""

    timestamp: Timestamp = 0
    num_updates: int = 0
    num_new: int = 0
    num_rem: int = 0
    wall_seconds: float = 0.0

    @property
    def num_deltas(self) -> int:
        return self.num_new + self.num_rem


@dataclass
class TaskTrace:
    """Record of a single exploration task, used by the cluster simulator.

    ``work`` is the abstract CPU cost of the task (operation count), and
    ``touched_vertices`` the distinct vertex records fetched from the graph
    store during exploration (used by the cache model).
    """

    timestamp: Timestamp
    update: EdgeUpdate
    work: float
    touched_vertices: FrozenSet[VertexId] = field(default_factory=frozenset)
    num_deltas: int = 0

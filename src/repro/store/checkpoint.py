"""Checkpointing and recovery of the multiversioned store (paper §5.5).

"The graph store is replicated and sharded on worker machines and can be
recovered in case of failures."  We reproduce the recovery contract with a
JSON checkpoint: :func:`checkpoint_store` serializes the full record set
(edge version intervals, label histories, latest timestamp) and
:func:`restore_store` rebuilds an identical store.  Combined with the
durable work queue's log, a crashed deployment recovers to exactly-once
output: restore the last checkpoint, then replay queued updates whose
timestamps exceed the checkpoint's.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphStoreError
from repro.store.mvstore import EdgeInterval, MultiVersionStore, VertexRecord

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def store_to_dict(store: MultiVersionStore) -> dict:
    """Serializable snapshot of the complete store state."""
    records = {}
    for v, rec in store._records.items():
        edges = {
            str(dst): [
                [iv.added_ts, iv.deleted_ts, iv.label, iv.direction]
                for iv in versions
            ]
            for dst, versions in rec.edges.items()
        }
        records[str(v)] = {
            "labels": [[ts, label] for ts, label in rec.label_history],
            "edges": edges,
        }
    return {
        "format": FORMAT_VERSION,
        "latest_ts": store.latest_timestamp,
        "num_shards": store.shards.num_shards,
        "records": records,
    }


def store_from_dict(data: dict) -> MultiVersionStore:
    """Rebuild a store from :func:`store_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise GraphStoreError(
            f"unsupported checkpoint format {data.get('format')!r}"
        )
    store = MultiVersionStore(num_shards=data["num_shards"])
    # Edge intervals are shared between both endpoints' records; rebuild
    # each undirected edge once and attach the same object to both sides.
    built = {}
    for v_str, rec_data in data["records"].items():
        v = int(v_str)
        record = VertexRecord(
            label_history=[(ts, label) for ts, label in rec_data["labels"]]
        )
        store._records[v] = record
    for v_str, rec_data in data["records"].items():
        v = int(v_str)
        for dst_str, versions in rec_data["edges"].items():
            dst = int(dst_str)
            key = (v, dst) if v < dst else (dst, v)
            if key not in built:
                built[key] = [
                    EdgeInterval(
                        added_ts=entry[0],
                        deleted_ts=entry[1],
                        label=entry[2],
                        direction=entry[3] if len(entry) > 3 else None,
                    )
                    for entry in versions
                ]
            store._records[v].edges[dst] = built[key]
    store._latest_ts = data["latest_ts"]
    return store


def checkpoint_store(store: MultiVersionStore, path: PathLike) -> None:
    """Write a durable checkpoint of the store to ``path``."""
    Path(path).write_text(json.dumps(store_to_dict(store)))


def restore_store(path: PathLike) -> MultiVersionStore:
    """Recover a store from a checkpoint file."""
    return store_from_dict(json.loads(Path(path).read_text()))

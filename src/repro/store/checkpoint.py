"""Checkpointing and recovery of the multiversioned store (paper §5.5).

"The graph store is replicated and sharded on worker machines and can be
recovered in case of failures."  We reproduce the recovery contract with a
JSON checkpoint: :func:`checkpoint_store` serializes the full record set
(edge version intervals, label histories, latest timestamp) and
:func:`restore_store` rebuilds an identical store.  Combined with the
durable work queue's log, a crashed deployment recovers to exactly-once
output: restore the last checkpoint, then replay queued updates whose
timestamps exceed the checkpoint's.

Serialization speaks only the :class:`~repro.store.api.GraphStore`
protocol (``iter_records`` / ``put_record``), so any store kind can be
checkpointed; the checkpoint records the kind and restore rebuilds the
same one (checkpoints predating the ``kind`` key restore as ``mv``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphStoreError
from repro.store.api import GraphStore, make_store
from repro.store.mvstore import EdgeInterval, VertexRecord

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def store_to_dict(store: GraphStore) -> dict:
    """Serializable snapshot of the complete store state."""
    records = {}
    for v, rec in store.iter_records():
        edges = {
            str(dst): [
                [iv.added_ts, iv.deleted_ts, iv.label, iv.direction]
                for iv in versions
            ]
            for dst, versions in rec.edges.items()
        }
        records[str(v)] = {
            "labels": [[ts, label] for ts, label in rec.label_history],
            "edges": edges,
        }
    return {
        "format": FORMAT_VERSION,
        "kind": store.kind,
        "latest_ts": store.latest_timestamp,
        "num_shards": store.shards.num_shards,
        "records": records,
    }


def store_from_dict(data: dict) -> GraphStore:
    """Rebuild a store from :func:`store_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise GraphStoreError(
            f"unsupported checkpoint format {data.get('format')!r}"
        )
    store = make_store(data.get("kind", "mv"), num_shards=data["num_shards"])
    # Edge intervals are shared between both endpoints' records; rebuild
    # each undirected edge once and attach the same object to both sides.
    built = {}
    restored = {}
    for v_str, rec_data in data["records"].items():
        v = int(v_str)
        restored[v] = VertexRecord(
            label_history=[(ts, label) for ts, label in rec_data["labels"]]
        )
    for v_str, rec_data in data["records"].items():
        v = int(v_str)
        for dst_str, versions in rec_data["edges"].items():
            dst = int(dst_str)
            key = (v, dst) if v < dst else (dst, v)
            if key not in built:
                built[key] = [
                    EdgeInterval(
                        added_ts=entry[0],
                        deleted_ts=entry[1],
                        label=entry[2],
                        direction=entry[3] if len(entry) > 3 else None,
                    )
                    for entry in versions
                ]
            restored[v].edges[dst] = built[key]
    for v_str in data["records"]:
        v = int(v_str)
        store.put_record(v, restored[v])
    store.set_latest_timestamp(data["latest_ts"])
    return store


def checkpoint_store(store: GraphStore, path: PathLike) -> None:
    """Write a durable checkpoint of the store to ``path``."""
    Path(path).write_text(json.dumps(store_to_dict(store)))


def restore_store(path: PathLike) -> GraphStore:
    """Recover a store from a checkpoint file."""
    return store_from_dict(json.loads(Path(path).read_text()))

"""Snapshot-keyed neighbor-list cache with explicit invalidation hooks.

Every exploration task re-derives the pre/post adjacency of the vertices
it touches from the store's interval lists; an :class:`~repro.store.\
snapshot.ExplorationView` memoizes those derivations only *within* one
task, so a hub vertex hit by many updates in the same window is re-scanned
once per task.  This cache closes that gap at the store layer: entries are
keyed ``(vertex, window ts)`` and hold the fully derived
``neighbor_states_at`` mapping, so repeated reads of one snapshot are dict
lookups.

Reads at a past snapshot are immutable under the store's monotonic write
clock, with exactly two exceptions the invalidation hooks cover:

* **writes at the current timestamp** (bulk loads and window application
  both issue many updates sharing one ``ts``): each ``add_edge`` /
  ``delete_edge`` at ``ts`` drops both endpoints' entries at any cached
  snapshot ``>= ts`` (:meth:`NeighborCache.invalidate_vertex`);
* **garbage collection**: reclaiming versions deleted at or before the
  horizon rewrites what sub-horizon snapshots would read, so
  :meth:`~repro.store.api.GraphStore.reclaim` drops every entry at or
  below it (:meth:`NeighborCache.invalidate_through`).

Window advancement bounds residency: once the streaming loop reports a
window complete, no later task reads snapshots below it, and
:meth:`NeighborCache.invalidate_below` retires those entries.

Hit/miss/eviction counters are plain integers read at snapshot time (they
bridge into the telemetry registry as gauges — counts depend on worker
scheduling and store copies, so they stay out of the deterministic
cross-backend ``counter_totals`` contract).  All mutation happens under
the cache's lock (thread backend engines share one store); pickling for
the process backend's store shipment drops the lock and starts the worker
copy cold.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.types import Timestamp, VertexId

#: default entry capacity; at ~one dict per cached (vertex, window) pair
#: this bounds the cache well below the store's own record footprint
DEFAULT_CACHE_CAPACITY = 65536

#: cache entry key: (vertex, window timestamp)
_Key = Tuple[VertexId, Timestamp]


class NeighborCache:
    """Bounded, lock-guarded map of (vertex, ts) -> neighbor-states dict."""

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._lock = threading.Lock()
        #: insertion-ordered entries; eviction is FIFO (deterministic)
        self._entries: Dict[_Key, dict] = {}
        #: vertex -> {cached ts -> None}, so per-vertex invalidation needs
        #: no full-table scan (dict, not set: deterministic iteration)
        self._stamps: Dict[VertexId, Dict[Timestamp, None]] = {}

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- read/write --------------------------------------------------------

    def get(self, v: VertexId, ts: Timestamp) -> Optional[dict]:
        """The cached mapping for ``(v, ts)``, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get((v, ts))
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry

    def put(self, v: VertexId, ts: Timestamp, states: dict) -> None:
        """Install a derived mapping; evicts FIFO beyond capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            if (v, ts) in self._entries:
                return
            while len(self._entries) >= self.capacity:
                old_key = next(iter(self._entries))
                self._drop(old_key)
                self.evictions += 1
            self._entries[(v, ts)] = states
            self._stamps.setdefault(v, {})[ts] = None

    # -- invalidation hooks ------------------------------------------------

    def invalidate_vertex(self, v: VertexId, ts: Timestamp) -> int:
        """Drop ``v``'s entries at snapshots >= ``ts`` (a write at ``ts``)."""
        with self._lock:
            stamps = self._stamps.get(v)
            if not stamps:
                return 0
            doomed = sorted(t for t in stamps if t >= ts)
            for t in doomed:
                self._drop((v, t))
            self.invalidations += len(doomed)
            return len(doomed)

    def invalidate_through(self, horizon: Timestamp) -> int:
        """Drop entries at windows <= ``horizon`` (GC rewrote their reads).

        An entry at window ``ts`` carries pre-snapshot ``ts - 1`` data, so
        the entry *at* the horizon is also stale once versions deleted at
        the horizon are gone.
        """
        return self._invalidate_older(horizon + 1)

    def invalidate_below(self, ts: Timestamp) -> int:
        """Drop entries at windows < ``ts`` (window advancement retirement).

        Entries at window ``ts`` itself stay: the next window's pre
        snapshot is ``ts``, served by keys >= ``ts``.
        """
        return self._invalidate_older(ts)

    def _invalidate_older(self, cutoff: Timestamp) -> int:
        with self._lock:
            doomed = sorted(key for key in self._entries if key[1] < cutoff)
            for key in doomed:
                self._drop(key)
            self.invalidations += len(doomed)
            return len(doomed)

    def _drop(self, key: _Key) -> None:
        """Remove one entry and its stamp (caller holds the lock)."""
        del self._entries[key]
        v, ts = key
        stamps = self._stamps.get(v)
        if stamps is not None:
            stamps.pop(ts, None)
            if not stamps:
                del self._stamps[v]

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stamps.clear()
            self.invalidations += dropped
            return dropped

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for run reports and the telemetry bridge."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "cache_capacity": self.capacity,
                "cache_entries": len(self._entries),
                "cache_hits": self.hits,
                "cache_misses": self.misses,
                "cache_evictions": self.evictions,
                "cache_invalidations": self.invalidations,
                "cache_hit_ratio": self.hits / total if total else 0.0,
            }

    # -- pickling (process backend ships the store) ------------------------

    def __getstate__(self) -> dict:
        # Locks do not pickle; entries and counters are worker-local soft
        # state, so shipped copies start cold (paper §5.5: worker caches
        # "can be lost without affecting correctness").
        return {"capacity": self.capacity}

    def __setstate__(self, state: dict) -> None:
        self.__init__(capacity=state["capacity"])

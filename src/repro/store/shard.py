"""Shard placement and access accounting for the graph store.

The paper's store is "sharded across all cluster nodes where workers are
executing. Each worker has read-only access to any part of the graph"
(section 4.1).  We reproduce the placement function and the accounting the
cluster simulator uses to charge remote-fetch costs; the data itself lives
in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.types import VertexId


@dataclass
class ShardMap:
    """Deterministic hash placement of vertex records onto shards."""

    num_shards: int = 8

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")

    def shard_of(self, v: VertexId) -> int:
        # Multiplicative hash keeps consecutive ids from landing on one shard.
        return (v * 2654435761 & 0xFFFFFFFF) % self.num_shards


@dataclass
class AccessStats:
    """Counts of vertex-record fetches, per shard and total."""

    per_shard: Dict[int, int] = field(default_factory=dict)
    total: int = 0
    #: shard count of the owning store; when set, untouched shards count
    #: as zero-load in :meth:`imbalance` instead of being ignored
    num_shards: Optional[int] = None

    def record(self, shard: int) -> None:
        self.per_shard[shard] = self.per_shard.get(shard, 0) + 1
        self.total += 1

    def reset(self) -> None:
        self.per_shard.clear()
        self.total = 0

    def imbalance(self) -> float:
        """Max/mean shard load ratio (1.0 = perfectly balanced).

        The mean is taken over *all* shards when ``num_shards`` is known —
        a fetch pattern that touches only one of eight shards is maximally
        skewed, not perfectly balanced.  Without a shard count (legacy
        construction) only touched shards enter the mean.
        """
        if not self.per_shard:
            return 1.0
        loads: List[int] = list(self.per_shard.values())
        denominator = self.num_shards if self.num_shards else len(loads)
        mean = sum(loads) / denominator
        return max(loads) / mean if mean else 1.0

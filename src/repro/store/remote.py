"""A client for the disaggregated graph store.

The paper separates compute from storage ("our multiversioned graph store
is sharded but fully accessible to all workers", §4.1; the Scatter-style
disaggregation of §7).  Workers therefore read the store through a fetch
boundary: whole vertex records cross it, and everything else is computed
worker-side from the fetched copy.

:class:`RemoteStoreClient` makes that boundary explicit while itself
implementing the full :class:`~repro.store.api.GraphStore` protocol, so
engines, GC, and checkpointing run unmodified over it.  Every first touch
of a vertex on the read path performs a *fetch*: it is logged, charged
simulated latency, and cached worker-side.  Writes pass through to the
inner store and invalidate the client's fetched copies of the touched
endpoints; the accumulated accounting feeds cost analyses without any
tracing hooks in the engine itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.store.api import GraphStore, ReclaimStats
from repro.store.mvstore import BaseRecordStore
from repro.types import EdgeKey, Label, Timestamp, VertexId


@dataclass(frozen=True)
class FetchCosts:
    """Latency model for one fetch (simulated seconds)."""

    round_trip: float = 100e-6  # network RTT
    per_edge: float = 0.2e-6  # serialization per adjacency entry


@dataclass
class FetchLog:
    """Accounting for all fetches a worker performed."""

    fetches: int = 0
    records_bytes_proxy: int = 0  # adjacency entries shipped
    simulated_seconds: float = 0.0
    per_shard: Dict[int, int] = field(default_factory=dict)


class RemoteStoreClient(GraphStore):
    """Worker-side client over a (conceptually remote) store.

    One client per worker; the cache is the worker's soft state and can be
    dropped at any time without correctness impact (paper §5.5: "The
    graphs cached at workers can be lost without affecting correctness").
    """

    kind = "remote"

    def __init__(
        self,
        store: BaseRecordStore,
        costs: FetchCosts = FetchCosts(),
        cache_capacity: Optional[int] = None,
    ) -> None:
        self.store = store
        self.costs = costs
        self.cache_capacity = cache_capacity
        self.log = FetchLog()
        # vertex -> full interval adjacency copy (the fetched record)
        self._cache: Dict[VertexId, dict] = {}

    # shard placement and access accounting belong to the inner store

    @property
    def shards(self):
        return self.store.shards

    @property
    def access_stats(self):
        return self.store.access_stats

    # -- the fetch boundary ------------------------------------------------

    def _fetch(self, v: VertexId) -> dict:
        cached = self._cache.get(v)
        if cached is not None:
            return cached
        record = self.store.get_record(v)
        edges = dict(record.edges) if record is not None else {}
        entries = sum(len(versions) for versions in edges.values())
        self.log.fetches += 1
        self.log.records_bytes_proxy += max(entries, 1)
        self.log.simulated_seconds += (
            self.costs.round_trip + entries * self.costs.per_edge
        )
        shard = self.store.shards.shard_of(v)
        self.log.per_shard[shard] = self.log.per_shard.get(shard, 0) + 1
        if (
            self.cache_capacity is not None
            and len(self._cache) >= self.cache_capacity
        ):
            self._cache.pop(next(iter(self._cache)))  # FIFO eviction
        self._cache[v] = edges
        return edges

    def drop_cache(self) -> None:
        """Simulate a worker restart: soft state vanishes."""
        self._cache.clear()

    def _invalidate(self, *vertices: VertexId) -> None:
        """A write touched these records; drop the fetched copies."""
        for v in vertices:
            self._cache.pop(v, None)

    # -- write path (delegates to the inner store) -------------------------

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        ts: Timestamp,
        label: Label = None,
        direction: Optional[str] = None,
    ) -> None:
        self.store.add_edge(u, v, ts, label=label, direction=direction)
        self._invalidate(u, v)

    def delete_edge(self, u: VertexId, v: VertexId, ts: Timestamp) -> None:
        self.store.delete_edge(u, v, ts)
        self._invalidate(u, v)

    def set_vertex_label(self, v: VertexId, ts: Timestamp, label: Label) -> None:
        self.store.set_vertex_label(v, ts, label)
        self._invalidate(v)

    def ensure_vertex(self, v: VertexId) -> None:
        self.store.ensure_vertex(v)

    # -- read interface (computed from fetched records) --------------------

    def neighbor_states_at(
        self, v: VertexId, ts: Timestamp
    ) -> Dict[VertexId, Tuple[bool, bool]]:
        """Union-view adjacency of ``v`` computed from the fetched record."""
        edges = self._fetch(v)
        out: Dict[VertexId, Tuple[bool, bool]] = {}
        pre_ts = ts - 1
        for dst, versions in edges.items():
            pre = any(iv.alive_at(pre_ts) for iv in versions)
            post = any(iv.alive_at(ts) for iv in versions)
            if pre or post:
                out[dst] = (pre, post)
        return out

    def union_neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        return sorted(self.neighbor_states_at(v, ts))

    def neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        return sorted(
            dst
            for dst, versions in self._fetch(v).items()
            if any(iv.alive_at(ts) for iv in versions)
        )

    def edge_alive_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        return any(iv.alive_at(ts) for iv in self._fetch(u).get(v, ()))

    def edge_updated_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        return any(iv.updated_at(ts) for iv in self._fetch(u).get(v, ()))

    def edge_label_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> Label:
        for iv in self._fetch(u).get(v, ()):
            if iv.alive_at(ts):
                return iv.label
        return None

    def edge_direction_at(
        self, u: VertexId, v: VertexId, ts: Timestamp
    ) -> Optional[str]:
        for iv in self._fetch(u).get(v, ()):
            if iv.alive_at(ts):
                return iv.direction
        return None

    def vertex_label_at(self, v: VertexId, ts: Timestamp) -> Label:
        # labels live with the vertex record; fetching it charges the shard
        self._fetch(v)
        return self.store.vertex_label_at(v, ts)

    def has_vertex(self, v: VertexId) -> bool:
        return self.store.has_vertex(v)

    def num_vertices(self) -> int:
        return self.store.num_vertices()

    def vertices(self) -> Iterator[VertexId]:
        return self.store.vertices()

    @property
    def latest_timestamp(self) -> Timestamp:
        return self.store.latest_timestamp

    def set_latest_timestamp(self, ts: Timestamp) -> None:
        self.store.set_latest_timestamp(ts)

    def updated_keys_in(self, ts: Timestamp) -> Dict[EdgeKey, bool]:
        return self.store.updated_keys_in(ts)

    # -- record transfer ---------------------------------------------------

    def get_record(self, v: VertexId):
        return self.store.get_record(v)

    def iter_records(self):
        return self.store.iter_records()

    def put_record(self, v: VertexId, record) -> None:
        self.store.put_record(v, record)
        self._invalidate(v)

    # -- maintenance -------------------------------------------------------

    def reclaim(self, horizon: Timestamp) -> ReclaimStats:
        """GC the inner store; fetched copies may hold reclaimed versions,
        so the client cache is dropped wholesale."""
        stats = self.store.reclaim(horizon)
        self.drop_cache()
        return stats

    def window_completed(self, ts: Timestamp) -> None:
        self.store.window_completed(ts)

    def store_stats(self) -> Dict[str, object]:
        stats = self.store.store_stats()
        stats["kind"] = self.kind
        stats["fetches"] = self.log.fetches
        stats["fetch_bytes_proxy"] = self.log.records_bytes_proxy
        stats["fetch_simulated_seconds"] = self.log.simulated_seconds
        stats["client_cache_entries"] = len(self._cache)
        return stats

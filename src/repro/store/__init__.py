"""Sharded, multiversioned graph store (paper sections 4.1, 5.2)."""

from repro.store.checkpoint import checkpoint_store, restore_store
from repro.store.gc import collect_garbage
from repro.store.mvstore import EdgeInterval, MultiVersionStore, VertexRecord
from repro.store.remote import FetchCosts, RemoteStoreClient
from repro.store.shard import ShardMap
from repro.store.snapshot import ExplorationView, SnapshotView

__all__ = [
    "EdgeInterval",
    "MultiVersionStore",
    "VertexRecord",
    "ShardMap",
    "SnapshotView",
    "ExplorationView",
    "collect_garbage",
    "checkpoint_store",
    "restore_store",
    "FetchCosts",
    "RemoteStoreClient",
]

"""Sharded, multiversioned graph store (paper sections 4.1, 5.2).

Every store kind implements the :class:`~repro.store.api.GraphStore`
protocol; construct one by name with :func:`~repro.store.api.make_store`
(``"mv"``, ``"sharded"``, or ``"remote"``).
"""

from repro.store.api import GraphStore, ReclaimStats, STORE_NAMES, make_store
from repro.store.cache import DEFAULT_CACHE_CAPACITY, NeighborCache
from repro.store.checkpoint import checkpoint_store, restore_store
from repro.store.delta import DeltaIndex
from repro.store.gc import collect_garbage, collect_garbage_stats
from repro.store.mvstore import EdgeInterval, MultiVersionStore, VertexRecord
from repro.store.remote import FetchCosts, RemoteStoreClient
from repro.store.shard import AccessStats, ShardMap
from repro.store.sharded import ShardedStore
from repro.store.snapshot import ExplorationView, SnapshotView

__all__ = [
    "GraphStore",
    "ReclaimStats",
    "STORE_NAMES",
    "make_store",
    "EdgeInterval",
    "MultiVersionStore",
    "ShardedStore",
    "VertexRecord",
    "ShardMap",
    "AccessStats",
    "NeighborCache",
    "DEFAULT_CACHE_CAPACITY",
    "DeltaIndex",
    "SnapshotView",
    "ExplorationView",
    "collect_garbage",
    "collect_garbage_stats",
    "checkpoint_store",
    "restore_store",
    "FetchCosts",
    "RemoteStoreClient",
]

"""Garbage collection of old deleted edges (paper section 5.1).

The ingress node periodically reclaims tombstoned edge versions that no
in-flight exploration can still observe.  A version is reclaimable when its
deletion timestamp is at or below the *horizon* — the highest timestamp such
that every window at or below it has been fully processed (the engine's low
watermark).  Versions still alive, or deleted after the horizon, are kept.

Reclamation itself lives behind the storage protocol
(:meth:`repro.store.api.GraphStore.reclaim`), so it works on any store
kind and also maintains the delta index and neighbor cache; this module
keeps the original function-shaped entry point for callers that only want
the reclaimed count.
"""

from __future__ import annotations

from repro.store.api import GraphStore, ReclaimStats
from repro.types import Timestamp


def collect_garbage(store: GraphStore, horizon: Timestamp) -> int:
    """Drop edge versions deleted at or before ``horizon``.

    Returns the number of undirected edge versions reclaimed; use
    :func:`collect_garbage_stats` (or :meth:`~repro.store.api.GraphStore.\
    reclaim` directly) for the full per-store breakdown.
    """
    return store.reclaim(horizon).reclaimed


def collect_garbage_stats(store: GraphStore, horizon: Timestamp) -> ReclaimStats:
    """Like :func:`collect_garbage`, returning the full reclaim stats."""
    return store.reclaim(horizon)

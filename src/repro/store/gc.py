"""Garbage collection of old deleted edges (paper section 5.1).

The ingress node periodically reclaims tombstoned edge versions that no
in-flight exploration can still observe.  A version is reclaimable when its
deletion timestamp is at or below the *horizon* — the highest timestamp such
that every window at or below it has been fully processed (the engine's low
watermark).  Versions still alive, or deleted after the horizon, are kept.
"""

from __future__ import annotations

from repro.store.mvstore import MultiVersionStore
from repro.types import Timestamp


def collect_garbage(store: MultiVersionStore, horizon: Timestamp) -> int:
    """Drop edge versions deleted at or before ``horizon``.

    Returns the number of undirected edge versions reclaimed.  Exploration
    of any window with timestamp > ``horizon`` only reads snapshots at
    ``ts`` and ``ts - 1 >= horizon``, and a version with
    ``deleted_ts <= horizon`` is dead in all such snapshots, so removal is
    safe.  Label history is left untouched (it is tiny by comparison).
    """
    reclaimed = 0
    for u, record in store._records.items():
        empty_neighbors = []
        for v, versions in record.edges.items():
            kept = [
                iv
                for iv in versions
                if iv.deleted_ts is None or iv.deleted_ts > horizon
            ]
            dropped = len(versions) - len(kept)
            if dropped:
                versions[:] = kept
                if u < v:
                    reclaimed += dropped
            if not kept:
                empty_neighbors.append(v)
        for v in empty_neighbors:
            del record.edges[v]
    return reclaimed

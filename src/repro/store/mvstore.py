"""The timestamp-based, multiversioned graph store (paper sections 4.1, 5.2).

The paper's store is MongoDB in adjacency-list format: "Each vertex record
maintains a list of outgoing edges, identified by the destination endpoint of
the edge, and the edge timestamp and associated labels.  Deleted edges are
kept but marked with a special flag."  We reproduce that record layout
in-process:

* each vertex has a record holding a label history and an adjacency map;
* each adjacency entry keeps a list of :class:`EdgeInterval` versions —
  ``[added_ts, deleted_ts)`` half-open lifetimes — so the same edge can be
  deleted and re-added, and deleted edges remain queryable (tombstones) until
  garbage collection;
* all reads are *as of* a timestamp, via the view classes in
  :mod:`repro.store.snapshot`.

Updates must be applied in non-decreasing timestamp order (the ingress node
guarantees this); reads at any past timestamp then return consistent
snapshots without synchronization, which is what lets workers run
independently (section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import InvalidUpdateError, UnknownVertexError
from repro.graph.adjacency import AdjacencyGraph
from repro.store.shard import AccessStats, ShardMap
from repro.types import EdgeKey, Label, Timestamp, VertexId, edge_key


@dataclass
class EdgeInterval:
    """One version of an edge: alive during ``[added_ts, deleted_ts)``.

    ``direction`` is relative to the normalized (min, max) endpoint order:
    None = undirected, "fwd" = min->max, "rev" = max->min, "both".
    """

    added_ts: Timestamp
    deleted_ts: Optional[Timestamp] = None
    label: Label = None
    direction: Optional[str] = None

    def alive_at(self, ts: Timestamp) -> bool:
        return self.added_ts <= ts and (self.deleted_ts is None or ts < self.deleted_ts)

    def updated_at(self, ts: Timestamp) -> bool:
        """Whether this version was added or deleted exactly at ``ts``."""
        return self.added_ts == ts or self.deleted_ts == ts


@dataclass
class VertexRecord:
    """Adjacency-list record for one vertex, as in the paper's store."""

    #: (timestamp, label) history, appended in timestamp order.
    label_history: List[Tuple[Timestamp, Label]] = field(default_factory=list)
    #: neighbor -> list of edge versions, oldest first.
    edges: Dict[VertexId, List[EdgeInterval]] = field(default_factory=dict)

    def label_at(self, ts: Timestamp) -> Label:
        """The vertex label in effect at snapshot ``ts`` (None if unset)."""
        result: Label = None
        for entry_ts, label in self.label_history:
            if entry_ts > ts:
                break
            result = label
        return result


class MultiVersionStore:
    """Multiversioned, sharded graph store with timestamped adjacency lists."""

    def __init__(self, num_shards: int = 8) -> None:
        self._records: Dict[VertexId, VertexRecord] = {}
        self._latest_ts: Timestamp = 0
        self.shards = ShardMap(num_shards)
        self.access_stats = AccessStats()

    # -- write path (ingress only) -------------------------------------------

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        ts: Timestamp,
        label: Label = None,
        direction: Optional[str] = None,
    ) -> None:
        """Add edge {u, v} at timestamp ``ts``.

        Raises :class:`InvalidUpdateError` if the edge is already alive at
        ``ts`` (the ingress sanitizer filters such updates out).
        """
        if u == v:
            raise InvalidUpdateError("self-loop edges are not supported")
        self._check_ts(ts)
        current = self._current_interval(u, v)
        if current is not None and current.alive_at(ts):
            raise InvalidUpdateError(f"edge ({u}, {v}) already exists at ts {ts}")
        if current is not None and current.deleted_ts == ts:
            raise InvalidUpdateError(
                f"edge ({u}, {v}) deleted and re-added in the same window"
            )
        from repro.types import normalize_direction

        interval = EdgeInterval(
            added_ts=ts,
            label=label,
            direction=normalize_direction(u, v, direction),
        )
        self._record(u).edges.setdefault(v, []).append(interval)
        self._record(v).edges.setdefault(u, []).append(interval)
        self._latest_ts = max(self._latest_ts, ts)

    def delete_edge(self, u: VertexId, v: VertexId, ts: Timestamp) -> None:
        """Mark edge {u, v} deleted at ``ts`` (tombstone; record is kept)."""
        self._check_ts(ts)
        current = self._current_interval(u, v)
        if current is None or not current.alive_at(ts - 1) or current.added_ts == ts:
            raise InvalidUpdateError(f"edge ({u}, {v}) does not exist before ts {ts}")
        current.deleted_ts = ts
        self._latest_ts = max(self._latest_ts, ts)

    def set_vertex_label(self, v: VertexId, ts: Timestamp, label: Label) -> None:
        """Append a label change effective from snapshot ``ts`` onward."""
        self._check_ts(ts)
        history = self._record(v).label_history
        if history and history[-1][0] == ts:
            history[-1] = (ts, label)
        else:
            history.append((ts, label))
        self._latest_ts = max(self._latest_ts, ts)

    def ensure_vertex(self, v: VertexId) -> None:
        self._record(v)

    def _check_ts(self, ts: Timestamp) -> None:
        if ts < self._latest_ts:
            raise InvalidUpdateError(
                f"updates must arrive in timestamp order "
                f"(got {ts} after {self._latest_ts})"
            )
        if ts < 1:
            raise InvalidUpdateError("timestamps start at 1")

    def _record(self, v: VertexId) -> VertexRecord:
        rec = self._records.get(v)
        if rec is None:
            rec = VertexRecord()
            self._records[v] = rec
        return rec

    def _current_interval(self, u: VertexId, v: VertexId) -> Optional[EdgeInterval]:
        rec = self._records.get(u)
        if rec is None:
            return None
        versions = rec.edges.get(v)
        return versions[-1] if versions else None

    # -- bulk load -------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls, graph: AdjacencyGraph, ts: Timestamp = 1, num_shards: int = 8
    ) -> "MultiVersionStore":
        """Load a whole static graph as one snapshot at timestamp ``ts``."""
        store = cls(num_shards=num_shards)
        for v in graph.vertices():
            store.ensure_vertex(v)
            label = graph.vertex_label(v)
            if label is not None:
                store.set_vertex_label(v, ts, label)
        for u, v in graph.edges():
            store.add_edge(
                u,
                v,
                ts,
                label=graph.edge_label(u, v),
                direction=graph.edge_direction(u, v),
            )
        store._latest_ts = max(store._latest_ts, ts)
        return store

    # -- read path (timestamped) -------------------------------------------

    @property
    def latest_timestamp(self) -> Timestamp:
        return self._latest_ts

    def has_vertex(self, v: VertexId) -> bool:
        return v in self._records

    def num_vertices(self) -> int:
        return len(self._records)

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._records)

    def fetch_record(self, v: VertexId) -> VertexRecord:
        """Fetch a vertex record, charging the owning shard (accounting)."""
        rec = self._records.get(v)
        if rec is None:
            raise UnknownVertexError(v)
        self.access_stats.record(self.shards.shard_of(v))
        return rec

    def vertex_label_at(self, v: VertexId, ts: Timestamp) -> Label:
        rec = self._records.get(v)
        if rec is None:
            return None
        return rec.label_at(ts)

    def edge_alive_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        rec = self._records.get(u)
        if rec is None:
            return False
        return any(iv.alive_at(ts) for iv in rec.edges.get(v, ()))

    def edge_updated_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        """Whether {u, v} was added or deleted exactly at ``ts``."""
        rec = self._records.get(u)
        if rec is None:
            return False
        return any(iv.updated_at(ts) for iv in rec.edges.get(v, ()))

    def edge_label_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> Label:
        """Label of edge {u, v} at ``ts`` (None if absent or unlabeled)."""
        rec = self._records.get(u)
        if rec is None:
            return None
        for iv in rec.edges.get(v, ()):
            if iv.alive_at(ts):
                return iv.label
        return None

    def edge_direction_at(
        self, u: VertexId, v: VertexId, ts: Timestamp
    ) -> Optional[str]:
        """Normalized direction of edge {u, v} at ``ts`` (None if absent
        or undirected)."""
        rec = self._records.get(u)
        if rec is None:
            return None
        for iv in rec.edges.get(v, ()):
            if iv.alive_at(ts):
                return iv.direction
        return None

    def neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        """Neighbors of ``v`` alive at snapshot ``ts``, sorted by id."""
        rec = self._records.get(v)
        if rec is None:
            return []
        return sorted(
            dst
            for dst, versions in rec.edges.items()
            if any(iv.alive_at(ts) for iv in versions)
        )

    def neighbor_states_at(
        self, v: VertexId, ts: Timestamp
    ) -> Dict[VertexId, Tuple[bool, bool]]:
        """Adjacency map of ``v`` for window ``ts``: nbr -> (pre, post).

        One pass over the vertex record yields, for every union-view
        neighbor, whether the edge is alive in the pre-window snapshot
        (``ts - 1``) and the post-window snapshot (``ts``).  This is the
        record a worker fetches to explore around ``v``.
        """
        rec = self._records.get(v)
        if rec is None:
            return {}
        out: Dict[VertexId, Tuple[bool, bool]] = {}
        pre_ts = ts - 1
        for dst, versions in rec.edges.items():
            pre = post = False
            for iv in versions:
                if not pre and iv.alive_at(pre_ts):
                    pre = True
                if not post and iv.alive_at(ts):
                    post = True
                if pre and post:
                    break
            if pre or post:
                out[dst] = (pre, post)
        return out

    def union_neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        """Neighbors alive at ``ts`` or at ``ts - 1`` (the exploration view).

        Exploration must traverse edges deleted in the current window so
        that removed matches are discovered; a deleted edge has
        ``deleted_ts == ts`` and is alive at ``ts - 1``.
        """
        rec = self._records.get(v)
        if rec is None:
            return []
        return sorted(
            dst
            for dst, versions in rec.edges.items()
            if any(iv.alive_at(ts) or iv.alive_at(ts - 1) for iv in versions)
        )

    def degree_at(self, v: VertexId, ts: Timestamp) -> int:
        return len(self.neighbors_at(v, ts))

    def edges_at(self, ts: Timestamp) -> Iterator[EdgeKey]:
        """All edges alive at snapshot ``ts`` (each yielded once, u < v)."""
        for u, rec in self._records.items():
            for v, versions in rec.edges.items():
                if u < v and any(iv.alive_at(ts) for iv in versions):
                    yield (u, v)

    def num_edges_at(self, ts: Timestamp) -> int:
        return sum(1 for _ in self.edges_at(ts))

    def as_adjacency(self, ts: Timestamp) -> AdjacencyGraph:
        """Materialize the full snapshot at ``ts`` as a plain graph."""
        g = AdjacencyGraph()
        for v in self._records:
            g.add_vertex(v)
            label = self.vertex_label_at(v, ts)
            if label is not None:
                g.set_vertex_label(v, label)
        for u, v in self.edges_at(ts):
            g.add_edge(
                u,
                v,
                label=self.edge_label_at(u, v, ts),
                direction=self.edge_direction_at(u, v, ts),
            )
        return g

    # -- maintenance -------------------------------------------------------

    def tombstone_count(self) -> int:
        """Number of fully dead edge versions currently retained."""
        count = 0
        for u, rec in self._records.items():
            for v, versions in rec.edges.items():
                if u < v:
                    count += sum(1 for iv in versions if iv.deleted_ts is not None)
        return count

    def memory_items(self) -> int:
        """Total adjacency entries held (a proxy for memory footprint)."""
        return sum(
            len(versions)
            for rec in self._records.values()
            for versions in rec.edges.values()
        )

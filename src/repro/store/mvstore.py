"""The timestamp-based, multiversioned graph store (paper sections 4.1, 5.2).

The paper's store is MongoDB in adjacency-list format: "Each vertex record
maintains a list of outgoing edges, identified by the destination endpoint of
the edge, and the edge timestamp and associated labels.  Deleted edges are
kept but marked with a special flag."  We reproduce that record layout
in-process:

* each vertex has a record holding a label history and an adjacency map;
* each adjacency entry keeps a list of :class:`EdgeInterval` versions —
  ``[added_ts, deleted_ts)`` half-open lifetimes — so the same edge can be
  deleted and re-added, and deleted edges remain queryable (tombstones) until
  garbage collection;
* all reads are *as of* a timestamp, via the view classes in
  :mod:`repro.store.snapshot`.

Updates must be applied in non-decreasing timestamp order (the ingress node
guarantees this); reads at any past timestamp then return consistent
snapshots without synchronization, which is what lets workers run
independently (section 4.5).

:class:`BaseRecordStore` implements the full :class:`~repro.store.api.\
GraphStore` protocol over five record-map primitives, layering in the
per-window :class:`~repro.store.delta.DeltaIndex` (O(1) updated-at probes)
and the snapshot-keyed :class:`~repro.store.cache.NeighborCache`.
:class:`MultiVersionStore` is the flat-dict record map; the physically
sharded map lives in :mod:`repro.store.sharded`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidUpdateError
from repro.graph.adjacency import AdjacencyGraph
from repro.store.api import GraphStore, ReclaimStats
from repro.store.cache import DEFAULT_CACHE_CAPACITY, NeighborCache
from repro.store.delta import DeltaIndex
from repro.store.shard import AccessStats, ShardMap
from repro.types import EdgeKey, Label, Timestamp, VertexId, edge_key


@dataclass
class EdgeInterval:
    """One version of an edge: alive during ``[added_ts, deleted_ts)``.

    ``direction`` is relative to the normalized (min, max) endpoint order:
    None = undirected, "fwd" = min->max, "rev" = max->min, "both".
    """

    added_ts: Timestamp
    deleted_ts: Optional[Timestamp] = None
    label: Label = None
    direction: Optional[str] = None

    def alive_at(self, ts: Timestamp) -> bool:
        return self.added_ts <= ts and (self.deleted_ts is None or ts < self.deleted_ts)

    def updated_at(self, ts: Timestamp) -> bool:
        """Whether this version was added or deleted exactly at ``ts``."""
        return self.added_ts == ts or self.deleted_ts == ts


@dataclass
class VertexRecord:
    """Adjacency-list record for one vertex, as in the paper's store."""

    #: (timestamp, label) history, appended in timestamp order.
    label_history: List[Tuple[Timestamp, Label]] = field(default_factory=list)
    #: neighbor -> list of edge versions, oldest first.
    edges: Dict[VertexId, List[EdgeInterval]] = field(default_factory=dict)

    def label_at(self, ts: Timestamp) -> Label:
        """The vertex label in effect at snapshot ``ts`` (None if unset)."""
        result: Label = None
        for entry_ts, label in self.label_history:
            if entry_ts > ts:
                break
            result = label
        return result


class BaseRecordStore(GraphStore):
    """Protocol implementation over an abstract vertex-record map.

    Subclasses supply only the record-map primitives (``_get_rec`` /
    ``_ensure_record`` / ``_put_rec`` / ``_iter_items`` / ``_keys``); the
    write validation, interval bookkeeping, delta index, neighbor cache,
    and reclamation logic are shared here.

    ``cache_size=0`` disables the neighbor cache and ``delta_index=False``
    falls back to interval scans for updated-at probes — both exist so the
    benchmark suite can price the seed read path against the indexed one.
    """

    def __init__(
        self,
        num_shards: int = 8,
        cache_size: int = DEFAULT_CACHE_CAPACITY,
        delta_index: bool = True,
    ) -> None:
        self._latest_ts: Timestamp = 0
        self.shards = ShardMap(num_shards)
        self.access_stats = AccessStats(num_shards=num_shards)
        self._delta = DeltaIndex()
        self._delta_enabled = delta_index
        self._cache = NeighborCache(capacity=cache_size)

    # -- record-map primitives (subclass responsibility) -------------------

    @abc.abstractmethod
    def _get_rec(self, v: VertexId) -> Optional[VertexRecord]:
        """The record of ``v``, or None."""

    @abc.abstractmethod
    def _ensure_record(self, v: VertexId) -> VertexRecord:
        """The record of ``v``, created if missing."""

    @abc.abstractmethod
    def _put_rec(self, v: VertexId, record: VertexRecord) -> None:
        """Install (or replace) the record of ``v``."""

    @abc.abstractmethod
    def _iter_items(self) -> Iterator[Tuple[VertexId, VertexRecord]]:
        """Every (vertex, record) pair, in a deterministic order."""

    @abc.abstractmethod
    def _keys(self) -> Iterator[VertexId]:
        """Every vertex id, in the same order as :meth:`_iter_items`."""

    @abc.abstractmethod
    def _contains(self, v: VertexId) -> bool: ...

    @abc.abstractmethod
    def _len(self) -> int: ...

    # -- write path (ingress only) -----------------------------------------

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        ts: Timestamp,
        label: Label = None,
        direction: Optional[str] = None,
    ) -> None:
        """Add edge {u, v} at timestamp ``ts``.

        Raises :class:`InvalidUpdateError` if the edge is already alive at
        ``ts`` (the ingress sanitizer filters such updates out).
        """
        if u == v:
            raise InvalidUpdateError("self-loop edges are not supported")
        self._check_ts(ts)
        current = self._current_interval(u, v)
        if current is not None and current.alive_at(ts):
            raise InvalidUpdateError(f"edge ({u}, {v}) already exists at ts {ts}")
        if current is not None and current.deleted_ts == ts:
            raise InvalidUpdateError(
                f"edge ({u}, {v}) deleted and re-added in the same window"
            )
        from repro.types import normalize_direction

        interval = EdgeInterval(
            added_ts=ts,
            label=label,
            direction=normalize_direction(u, v, direction),
        )
        self._ensure_record(u).edges.setdefault(v, []).append(interval)
        self._ensure_record(v).edges.setdefault(u, []).append(interval)
        self._after_edge_write(u, v, ts, added=True)
        self._latest_ts = max(self._latest_ts, ts)

    def delete_edge(self, u: VertexId, v: VertexId, ts: Timestamp) -> None:
        """Mark edge {u, v} deleted at ``ts`` (tombstone; record is kept)."""
        self._check_ts(ts)
        current = self._current_interval(u, v)
        if current is None or not current.alive_at(ts - 1) or current.added_ts == ts:
            raise InvalidUpdateError(f"edge ({u}, {v}) does not exist before ts {ts}")
        current.deleted_ts = ts
        self._after_edge_write(u, v, ts, added=False)
        self._latest_ts = max(self._latest_ts, ts)

    def set_vertex_label(self, v: VertexId, ts: Timestamp, label: Label) -> None:
        """Append a label change effective from snapshot ``ts`` onward."""
        self._check_ts(ts)
        history = self._ensure_record(v).label_history
        if history and history[-1][0] == ts:
            history[-1] = (ts, label)
        else:
            history.append((ts, label))
        self._latest_ts = max(self._latest_ts, ts)

    def ensure_vertex(self, v: VertexId) -> None:
        self._ensure_record(v)

    def _after_edge_write(
        self, u: VertexId, v: VertexId, ts: Timestamp, added: bool
    ) -> None:
        """Maintain the delta index and cache coherence for one edge write."""
        if self._delta_enabled:
            self._delta.note(ts, edge_key(u, v), added)
        if self._cache.enabled:
            # A write at ts rewrites what snapshots >= ts read for both
            # endpoints (only reachable for entries cached at the current
            # timestamp, e.g. during bulk loads sharing one ts).
            self._cache.invalidate_vertex(u, ts)
            self._cache.invalidate_vertex(v, ts)

    def _check_ts(self, ts: Timestamp) -> None:
        if ts < self._latest_ts:
            raise InvalidUpdateError(
                f"updates must arrive in timestamp order "
                f"(got {ts} after {self._latest_ts})"
            )
        if ts < 1:
            raise InvalidUpdateError("timestamps start at 1")

    def _current_interval(self, u: VertexId, v: VertexId) -> Optional[EdgeInterval]:
        rec = self._get_rec(u)
        if rec is None:
            return None
        versions = rec.edges.get(v)
        return versions[-1] if versions else None

    # -- bulk load -------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls,
        graph: AdjacencyGraph,
        ts: Timestamp = 1,
        num_shards: int = 8,
        cache_size: int = DEFAULT_CACHE_CAPACITY,
    ):
        """Load a whole static graph as one snapshot at timestamp ``ts``."""
        store = cls(num_shards=num_shards, cache_size=cache_size)
        for v in graph.vertices():
            store.ensure_vertex(v)
            label = graph.vertex_label(v)
            if label is not None:
                store.set_vertex_label(v, ts, label)
        for u, v in graph.edges():
            store.add_edge(
                u,
                v,
                ts,
                label=graph.edge_label(u, v),
                direction=graph.edge_direction(u, v),
            )
        store.set_latest_timestamp(max(store.latest_timestamp, ts))
        return store

    # -- read path (timestamped) -------------------------------------------

    @property
    def latest_timestamp(self) -> Timestamp:
        return self._latest_ts

    def set_latest_timestamp(self, ts: Timestamp) -> None:
        self._latest_ts = ts

    def has_vertex(self, v: VertexId) -> bool:
        return self._contains(v)

    def num_vertices(self) -> int:
        return self._len()

    def vertices(self) -> Iterator[VertexId]:
        return self._keys()

    def get_record(self, v: VertexId) -> Optional[VertexRecord]:
        return self._get_rec(v)

    def iter_records(self) -> Iterator[Tuple[VertexId, VertexRecord]]:
        return self._iter_items()

    def put_record(self, v: VertexId, record: VertexRecord) -> None:
        """Install a complete record (checkpoint restore); reindexes it.

        Delta-index facts are derived from the lower endpoint's record
        only, so putting both endpoints of a shared edge notes each fact
        exactly once.
        """
        self._put_rec(v, record)
        if self._delta_enabled:
            for dst, versions in record.edges.items():
                if v < dst:
                    key = (v, dst)
                    for iv in versions:
                        self._delta.note(iv.added_ts, key, True)
                        if iv.deleted_ts is not None:
                            self._delta.note(iv.deleted_ts, key, False)
        if self._cache.enabled:
            self._cache.invalidate_vertex(v, 0)

    def vertex_label_at(self, v: VertexId, ts: Timestamp) -> Label:
        rec = self._get_rec(v)
        if rec is None:
            return None
        return rec.label_at(ts)

    def edge_alive_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        rec = self._get_rec(u)
        if rec is None:
            return False
        return any(iv.alive_at(ts) for iv in rec.edges.get(v, ()))

    def edge_updated_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        """Whether {u, v} was added or deleted exactly at ``ts``.

        With the delta index on (the default) this is one dict probe; the
        fallback scans the edge's interval versions.
        """
        if self._delta_enabled:
            return self._delta.updated_at(edge_key(u, v), ts)
        rec = self._get_rec(u)
        if rec is None:
            return False
        return any(iv.updated_at(ts) for iv in rec.edges.get(v, ()))

    def updated_keys_in(self, ts: Timestamp) -> Dict[EdgeKey, bool]:
        """Edges updated exactly at ``ts``: key -> added (True) / deleted."""
        if self._delta_enabled:
            return self._delta.keys_in(ts)
        out: Dict[EdgeKey, bool] = {}
        for u, rec in self._iter_items():
            for v, versions in rec.edges.items():
                if u < v:
                    for iv in versions:
                        if iv.added_ts == ts:
                            out[(u, v)] = True
                        elif iv.deleted_ts == ts:
                            out[(u, v)] = False
        return out

    def edge_label_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> Label:
        """Label of edge {u, v} at ``ts`` (None if absent or unlabeled)."""
        rec = self._get_rec(u)
        if rec is None:
            return None
        for iv in rec.edges.get(v, ()):
            if iv.alive_at(ts):
                return iv.label
        return None

    def edge_direction_at(
        self, u: VertexId, v: VertexId, ts: Timestamp
    ) -> Optional[str]:
        """Normalized direction of edge {u, v} at ``ts`` (None if absent
        or undirected)."""
        rec = self._get_rec(u)
        if rec is None:
            return None
        for iv in rec.edges.get(v, ()):
            if iv.alive_at(ts):
                return iv.direction
        return None

    def neighbor_states_at(
        self, v: VertexId, ts: Timestamp
    ) -> Dict[VertexId, Tuple[bool, bool]]:
        """Adjacency map of ``v`` for window ``ts``: nbr -> (pre, post).

        One pass over the vertex record yields, for every union-view
        neighbor, whether the edge is alive in the pre-window snapshot
        (``ts - 1``) and the post-window snapshot (``ts``).  This is the
        record a worker fetches to explore around ``v``.  Results are
        cached per ``(v, ts)`` snapshot key; the returned mapping may be
        shared between callers and must not be mutated.
        """
        cache = self._cache
        if cache.enabled:
            cached = cache.get(v, ts)
            if cached is not None:
                return cached
        rec = self._get_rec(v)
        if rec is None:
            return {}
        out: Dict[VertexId, Tuple[bool, bool]] = {}
        pre_ts = ts - 1
        for dst, versions in rec.edges.items():
            pre = post = False
            for iv in versions:
                if not pre and iv.alive_at(pre_ts):
                    pre = True
                if not post and iv.alive_at(ts):
                    post = True
                if pre and post:
                    break
            if pre or post:
                out[dst] = (pre, post)
        if cache.enabled:
            cache.put(v, ts, out)
        return out

    # -- maintenance -------------------------------------------------------

    def reclaim(self, horizon: Timestamp) -> ReclaimStats:
        """Drop edge versions deleted at or before ``horizon`` (GC).

        Returns per-store :class:`~repro.store.api.ReclaimStats`;
        ``reclaimed`` counts undirected edge versions, exactly as the
        original ``collect_garbage`` did.  The delta index discards the
        facts of every dropped interval (so updated-at probes keep
        agreeing with interval scans at any timestamp), and the neighbor
        cache drops entries at or below the horizon (their pre-snapshot
        data may reference reclaimed versions).  Label history is left
        untouched (it is tiny by comparison).
        """
        stats = ReclaimStats(horizon=horizon)
        for u, record in self._iter_items():
            empty_neighbors = []
            for v, versions in record.edges.items():
                dead = [
                    iv
                    for iv in versions
                    if iv.deleted_ts is not None and iv.deleted_ts <= horizon
                ]
                if dead:
                    key = (u, v) if u < v else (v, u)
                    if self._delta_enabled:
                        # Idempotent: shared intervals reach here from both
                        # endpoints; the second discard is a no-op.
                        for iv in dead:
                            stats.index_pruned += self._delta.discard(
                                iv.added_ts, key
                            )
                            stats.index_pruned += self._delta.discard(
                                iv.deleted_ts, key
                            )
                    if u < v:
                        stats.reclaimed += len(dead)
                        shard = self.shards.shard_of(u)
                        stats.per_shard[shard] = (
                            stats.per_shard.get(shard, 0) + len(dead)
                        )
                    versions[:] = [
                        iv
                        for iv in versions
                        if iv.deleted_ts is None or iv.deleted_ts > horizon
                    ]
                if not versions:
                    empty_neighbors.append(v)
            for v in empty_neighbors:
                del record.edges[v]
        if self._cache.enabled:
            stats.cache_invalidated = self._cache.invalidate_through(horizon)
        return stats

    def window_completed(self, ts: Timestamp) -> None:
        """Streaming-loop hook: window ``ts`` is done; retire older entries."""
        if self._cache.enabled:
            self._cache.invalidate_below(ts)

    def store_stats(self) -> Dict[str, object]:
        """Flat stats dict for run reports and the telemetry bridge."""
        stats: Dict[str, object] = {
            "kind": self.kind,
            "num_shards": self.shards.num_shards,
            "delta_entries": self._delta.size() if self._delta_enabled else 0,
            "access_total": self.access_stats.total,
            "access_imbalance": self.access_stats.imbalance(),
        }
        stats.update(self._cache.stats())
        return stats


class MultiVersionStore(BaseRecordStore):
    """Multiversioned graph store over one flat in-process record map."""

    kind = "mv"

    def __init__(
        self,
        num_shards: int = 8,
        cache_size: int = DEFAULT_CACHE_CAPACITY,
        delta_index: bool = True,
    ) -> None:
        super().__init__(
            num_shards=num_shards, cache_size=cache_size, delta_index=delta_index
        )
        self._records: Dict[VertexId, VertexRecord] = {}

    def _get_rec(self, v: VertexId) -> Optional[VertexRecord]:
        return self._records.get(v)

    def _ensure_record(self, v: VertexId) -> VertexRecord:
        rec = self._records.get(v)
        if rec is None:
            rec = VertexRecord()
            self._records[v] = rec
        return rec

    def _put_rec(self, v: VertexId, record: VertexRecord) -> None:
        self._records[v] = record

    def _iter_items(self) -> Iterator[Tuple[VertexId, VertexRecord]]:
        return iter(self._records.items())

    def _keys(self) -> Iterator[VertexId]:
        return iter(self._records)

    def _contains(self, v: VertexId) -> bool:
        return v in self._records

    def _len(self) -> int:
        return len(self._records)

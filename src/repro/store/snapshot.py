"""Point-in-time views over the multiversioned store.

A :class:`SnapshotView` reads the graph exactly as it was at one timestamp.
An :class:`ExplorationView` is the graph the EXPLORE algorithm walks: the
union of the pre-window and post-window snapshots, with helpers to evaluate
edges in either version (paper section 4.3) and to test whether an edge was
updated in the current window (Algorithm 3 line 2).

Both views optionally record the set of vertex records they fetch, which the
cluster simulator's cache model consumes.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.store.api import GraphStore
from repro.types import Label, Timestamp, VertexId


class SnapshotView:
    """Read-only view of the graph as of one snapshot timestamp."""

    __slots__ = ("store", "ts", "recorder")

    def __init__(
        self,
        store: GraphStore,
        ts: Timestamp,
        recorder: Optional[Set[VertexId]] = None,
    ) -> None:
        self.store = store
        self.ts = ts
        self.recorder = recorder

    def _touch(self, v: VertexId) -> None:
        if self.recorder is not None:
            self.recorder.add(v)

    def neighbors(self, v: VertexId) -> List[VertexId]:
        self._touch(v)
        return self.store.neighbors_at(v, self.ts)

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        self._touch(u)
        return self.store.edge_alive_at(u, v, self.ts)

    def degree(self, v: VertexId) -> int:
        self._touch(v)
        return self.store.degree_at(v, self.ts)

    def vertex_label(self, v: VertexId) -> Label:
        self._touch(v)
        return self.store.vertex_label_at(v, self.ts)

    def edge_label(self, u: VertexId, v: VertexId) -> Label:
        self._touch(u)
        return self.store.edge_label_at(u, v, self.ts)

    def has_vertex(self, v: VertexId) -> bool:
        return self.store.has_vertex(v)


class ExplorationView:
    """The union view walked by EXPLORE for a window at timestamp ``ts``.

    Neighbor iteration covers every edge alive immediately before or after
    the window, so exploration reaches matches destroyed by deletions as
    well as matches created by additions.  ``alive_pre``/``alive_post``
    evaluate an edge in the pre-update and post-update snapshots, which is
    what DETECT_CHANGES needs to build the two subgraph versions.

    The view memoizes neighbor lists, edge states, and labels: it models
    the worker's in-memory copy of the graph records fetched for one task
    (the paper's workers "operate on an in-memory graph representation",
    section 5.2).  The first access to a vertex is recorded as a store
    fetch; subsequent accesses hit the worker-local copy.
    """

    __slots__ = ("store", "ts", "recorder", "_nbr_cache", "_label_cache")

    def __init__(
        self,
        store: GraphStore,
        ts: Timestamp,
        recorder: Optional[Set[VertexId]] = None,
    ) -> None:
        if ts < 1:
            raise ValueError("window timestamps start at 1")
        self.store = store
        self.ts = ts
        self.recorder = recorder
        self._nbr_cache: dict = {}
        self._label_cache: dict = {}

    def _touch(self, v: VertexId) -> None:
        if self.recorder is not None:
            self.recorder.add(v)

    def adjacency(self, v: VertexId) -> dict:
        """Union-view adjacency map of ``v``: nbr -> (alive_pre, alive_post).

        The map is the worker-local copy of the fetched vertex record;
        the first access counts as a store fetch.
        """
        cached = self._nbr_cache.get(v)
        if cached is None:
            self._touch(v)
            cached = self.store.neighbor_states_at(v, self.ts)
            self._nbr_cache[v] = cached
        return cached

    def neighbors(self, v: VertexId) -> List[VertexId]:
        """Neighbors of ``v`` in the union of pre- and post-window snapshots."""
        return sorted(self.adjacency(v))

    def edge_state(self, u: VertexId, v: VertexId) -> tuple:
        """(alive_pre, alive_post) for edge {u, v}."""
        return self.adjacency(u).get(v, (False, False))

    def alive_pre(self, u: VertexId, v: VertexId) -> bool:
        """Whether edge {u, v} exists in the snapshot preceding the window."""
        return self.edge_state(u, v)[0]

    def alive_post(self, u: VertexId, v: VertexId) -> bool:
        """Whether edge {u, v} exists in the snapshot after the window."""
        return self.edge_state(u, v)[1]

    def alive_union(self, u: VertexId, v: VertexId) -> bool:
        state = self.edge_state(u, v)
        return state[0] or state[1]

    def updated_in_window(self, u: VertexId, v: VertexId) -> bool:
        """Whether edge {u, v} was added or deleted in this window.

        This is the ``TIMESTAMP(v, u) == ts`` test of Algorithm 3 line 2.
        """
        self._touch(u)
        return self.store.edge_updated_at(u, v, self.ts)

    def vertex_label(self, v: VertexId, pre: bool = False) -> Label:
        """Vertex label at the window's post snapshot (or pre with ``pre=True``)."""
        key = (v, pre)
        if key in self._label_cache:
            return self._label_cache[key]
        self._touch(v)
        label = self.store.vertex_label_at(v, self.ts - 1 if pre else self.ts)
        self._label_cache[key] = label
        return label

    def pre_snapshot(self) -> SnapshotView:
        return SnapshotView(self.store, self.ts - 1, self.recorder)

    def post_snapshot(self) -> SnapshotView:
        return SnapshotView(self.store, self.ts, self.recorder)

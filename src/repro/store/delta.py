"""Per-window delta index: O(1) "was this edge updated at ts?" lookups.

Algorithm 3's same-window test (``TIMESTAMP(v, u) == ts``) and
DETECT_CHANGES both ask whether an edge was added or deleted exactly at a
window timestamp.  Answering that from the record layout means scanning
the edge's :class:`~repro.store.mvstore.EdgeInterval` version list on
every probe; DDSL-style incremental indexing does better by maintaining,
*at apply time*, a map from each window timestamp to the set of edge keys
it touched.  Both probes become single dict lookups.

The index is an exact mirror of the interval facts: ``add_edge(u, v, ts)``
records ``(ts, key, added=True)``, ``delete_edge`` records ``(ts, key,
added=False)``, and garbage collection discards exactly the facts of the
interval versions it drops — so index answers and interval scans agree at
every timestamp, before and after any reclaim.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.types import EdgeKey, Timestamp


class DeltaIndex:
    """Window timestamp -> {edge key -> added?} map, maintained at apply time."""

    __slots__ = ("_by_ts",)

    def __init__(self) -> None:
        self._by_ts: Dict[Timestamp, Dict[EdgeKey, bool]] = {}

    def note(self, ts: Timestamp, key: EdgeKey, added: bool) -> None:
        """Record that ``key`` was added (or deleted) exactly at ``ts``."""
        self._by_ts.setdefault(ts, {})[key] = added

    def updated_at(self, key: EdgeKey, ts: Timestamp) -> bool:
        """O(1) membership probe: was ``key`` touched by window ``ts``?"""
        window = self._by_ts.get(ts)
        return window is not None and key in window

    def keys_in(self, ts: Timestamp) -> Dict[EdgeKey, bool]:
        """The full update set of window ``ts`` (a defensive copy)."""
        window = self._by_ts.get(ts)
        return dict(window) if window else {}

    def discard(self, ts: Timestamp, key: EdgeKey) -> int:
        """Forget one fact (GC dropped its interval); returns 0 or 1."""
        window = self._by_ts.get(ts)
        if window is None or key not in window:
            return 0
        del window[key]
        if not window:
            del self._by_ts[ts]
        return 1

    def size(self) -> int:
        """Total edge facts held across all windows."""
        return sum(len(window) for window in self._by_ts.values())

    def items(self) -> Iterator[Tuple[Timestamp, EdgeKey, bool]]:
        for ts in sorted(self._by_ts):
            window = self._by_ts[ts]
            for key in sorted(window):
                yield ts, key, window[key]

    def clear(self) -> None:
        self._by_ts.clear()

"""Physically sharded record store: one record map per shard.

The paper's store "is sharded but fully accessible to all workers"
(§4.1).  The flat :class:`~repro.store.mvstore.MultiVersionStore` only
*accounts* shard placement (every record lives in one dict and
``AccessStats`` attributes reads to shards after the fact);
:class:`ShardedStore` makes the placement physical — each shard owns its
own ``{vertex: record}`` map and every record operation routes through
:meth:`~repro.store.shard.ShardMap.shard_of` — which is the layout a
per-shard serving process would hold in the distributed deployment.

Mining output is unaffected by the partitioning: records themselves are
identical to the flat store's, and iteration order (shard 0..N-1, each in
insertion order) only changes traversal order of whole-store scans, which
every consumer sorts or reduces order-insensitively.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.store.cache import DEFAULT_CACHE_CAPACITY
from repro.store.mvstore import BaseRecordStore, VertexRecord
from repro.types import VertexId


class ShardedStore(BaseRecordStore):
    """Multiversioned graph store partitioned into per-shard record maps."""

    kind = "sharded"

    def __init__(
        self,
        num_shards: int = 8,
        cache_size: int = DEFAULT_CACHE_CAPACITY,
        delta_index: bool = True,
    ) -> None:
        super().__init__(
            num_shards=num_shards, cache_size=cache_size, delta_index=delta_index
        )
        self._shard_records: List[Dict[VertexId, VertexRecord]] = [
            {} for _ in range(num_shards)
        ]

    def _shard_map_of(self, v: VertexId) -> Dict[VertexId, VertexRecord]:
        return self._shard_records[self.shards.shard_of(v)]

    def _get_rec(self, v: VertexId) -> Optional[VertexRecord]:
        return self._shard_map_of(v).get(v)

    def _ensure_record(self, v: VertexId) -> VertexRecord:
        shard = self._shard_map_of(v)
        rec = shard.get(v)
        if rec is None:
            rec = VertexRecord()
            shard[v] = rec
        return rec

    def _put_rec(self, v: VertexId, record: VertexRecord) -> None:
        self._shard_map_of(v)[v] = record

    def _iter_items(self) -> Iterator[Tuple[VertexId, VertexRecord]]:
        for shard in self._shard_records:
            yield from shard.items()

    def _keys(self) -> Iterator[VertexId]:
        for shard in self._shard_records:
            yield from shard

    def _contains(self, v: VertexId) -> bool:
        return v in self._shard_map_of(v)

    def _len(self) -> int:
        return sum(len(shard) for shard in self._shard_records)

    def shard_sizes(self) -> List[int]:
        """Record count per shard (placement skew introspection)."""
        return [len(shard) for shard in self._shard_records]

    def store_stats(self) -> Dict[str, object]:
        stats = super().store_stats()
        sizes = self.shard_sizes()
        stats["shard_max_records"] = max(sizes) if sizes else 0
        stats["shard_min_records"] = min(sizes) if sizes else 0
        return stats

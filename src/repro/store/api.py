"""The ``GraphStore`` protocol: one storage contract for every backend.

The paper's store is a swappable component — "our multiversioned graph
store is sharded but fully accessible to all workers" (§4.1), with the
disaggregated variant of §7 reading it through a fetch boundary.  This
module pins down the contract the rest of the reproduction programs
against, so the in-process flat store (:class:`~repro.store.mvstore.\
MultiVersionStore`), the physically sharded store (:class:`~repro.store.\
sharded.ShardedStore`), and the disaggregated client (:class:`~repro.\
store.remote.RemoteStoreClient`) are interchangeable everywhere: views,
engine, ingress, GC, checkpointing, and every execution backend.

The contract has four parts:

* a **write path** applied in non-decreasing timestamp order (ingress
  only): :meth:`GraphStore.add_edge`, :meth:`GraphStore.delete_edge`,
  :meth:`GraphStore.set_vertex_label`, :meth:`GraphStore.ensure_vertex`;
* a **timestamped read path** where every query is *as of* a snapshot;
  :meth:`GraphStore.neighbor_states_at` is the primitive record fetch
  (list-shaped reads derive from it), the ``edge_*_at`` probes answer
  single-edge questions;
* a **record transfer path** (:meth:`GraphStore.get_record`,
  :meth:`GraphStore.iter_records`, :meth:`GraphStore.put_record`) used by
  the fetch boundary and checkpointing, so neither needs the store's
  internals;
* a **maintenance path**: :meth:`GraphStore.reclaim` (garbage collection
  behind the protocol, returning per-store stats),
  :meth:`GraphStore.window_completed` (the cache invalidation hook the
  streaming loop fires as windows retire), and :meth:`GraphStore.\
  store_stats` (the run-report surface).

Derived reads (``neighbors_at``, ``edges_at``, ``as_adjacency``, counts)
are implemented here once, on top of the primitives, so a new store kind
only implements the genuinely storage-specific surface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import UnknownVertexError
from repro.graph.adjacency import AdjacencyGraph
from repro.store.shard import AccessStats, ShardMap
from repro.types import EdgeKey, Label, Timestamp, VertexId

#: Names accepted by :func:`make_store` and the CLI ``mine --store`` flag.
STORE_NAMES = ("mv", "sharded", "remote", "net")


@dataclass
class ReclaimStats:
    """What one :meth:`GraphStore.reclaim` pass dropped.

    ``reclaimed`` counts undirected edge versions (each version is shared
    by both endpoint records but counted once), matching the return value
    the original ``collect_garbage`` reported.
    """

    horizon: Timestamp = 0
    #: undirected edge versions dropped (deleted at or before the horizon)
    reclaimed: int = 0
    #: reclaimed versions per owning shard (shard of the lower endpoint)
    per_shard: Dict[int, int] = field(default_factory=dict)
    #: delta-index edge facts pruned alongside the dropped versions
    index_pruned: int = 0
    #: neighbor-cache entries invalidated at or below the horizon
    cache_invalidated: int = 0


class GraphStore(abc.ABC):
    """Abstract multiversioned graph store (paper §4.1, §5.2).

    Implementations expose two shared accounting objects: ``shards`` (a
    :class:`~repro.store.shard.ShardMap` giving the deterministic record
    placement) and ``access_stats`` (an :class:`~repro.store.shard.\
    AccessStats` charged by :meth:`fetch_record`).  All reads are *as of*
    a timestamp; updates must arrive in non-decreasing timestamp order,
    which is what makes past snapshots immutable and lets workers read
    without synchronization (§4.5).
    """

    #: registry name of this store kind ("mv", "sharded", "remote")
    kind: str = "?"

    shards: ShardMap
    access_stats: AccessStats

    # -- write path (ingress only) ----------------------------------------

    @abc.abstractmethod
    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        ts: Timestamp,
        label: Label = None,
        direction: Optional[str] = None,
    ) -> None:
        """Add edge {u, v} at ``ts``; raises if it is already alive."""

    @abc.abstractmethod
    def delete_edge(self, u: VertexId, v: VertexId, ts: Timestamp) -> None:
        """Tombstone edge {u, v} at ``ts``; the version stays until GC."""

    @abc.abstractmethod
    def set_vertex_label(self, v: VertexId, ts: Timestamp, label: Label) -> None:
        """Append a label change effective from snapshot ``ts`` onward."""

    @abc.abstractmethod
    def ensure_vertex(self, v: VertexId) -> None:
        """Create an (isolated) vertex record if it does not exist."""

    def apply_edge_updates(self, ts: Timestamp, updates) -> None:
        """Apply one window's edge updates at the shared timestamp ``ts``.

        ``updates`` is an ordered iterable of :class:`~repro.types.\
        EdgeUpdate`; they apply strictly in list order, so the default —
        the per-update loop every in-process store wants — and any
        coalescing override (the ``net`` store ships whole batches as one
        ``put_edges`` RPC) leave the store in the identical state.
        """
        for upd in updates:
            if upd.added:
                self.add_edge(
                    upd.u, upd.v, ts, label=upd.label, direction=upd.direction
                )
            else:
                self.delete_edge(upd.u, upd.v, ts)

    # -- read path (timestamped) ------------------------------------------

    @property
    @abc.abstractmethod
    def latest_timestamp(self) -> Timestamp:
        """The highest timestamp any applied update carried."""

    @abc.abstractmethod
    def has_vertex(self, v: VertexId) -> bool: ...

    @abc.abstractmethod
    def num_vertices(self) -> int: ...

    @abc.abstractmethod
    def vertices(self) -> Iterator[VertexId]: ...

    @abc.abstractmethod
    def vertex_label_at(self, v: VertexId, ts: Timestamp) -> Label: ...

    @abc.abstractmethod
    def edge_alive_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool: ...

    @abc.abstractmethod
    def edge_updated_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> bool:
        """Whether {u, v} was added or deleted exactly at ``ts``."""

    @abc.abstractmethod
    def edge_label_at(self, u: VertexId, v: VertexId, ts: Timestamp) -> Label: ...

    @abc.abstractmethod
    def edge_direction_at(
        self, u: VertexId, v: VertexId, ts: Timestamp
    ) -> Optional[str]: ...

    @abc.abstractmethod
    def neighbor_states_at(
        self, v: VertexId, ts: Timestamp
    ) -> Dict[VertexId, Tuple[bool, bool]]:
        """Adjacency map of ``v`` for window ``ts``: nbr -> (pre, post).

        The primitive record read: for every union-view neighbor, whether
        the edge is alive in the pre-window snapshot (``ts - 1``) and the
        post-window snapshot (``ts``).  Implementations may return a
        cached mapping shared between callers — treat it as read-only.
        """

    @abc.abstractmethod
    def updated_keys_in(self, ts: Timestamp) -> Dict[EdgeKey, bool]:
        """Edges updated exactly at ``ts``: key -> added (True) / deleted.

        The DETECT_CHANGES membership set for one window.
        """

    # -- derived reads (implemented once, over the primitives) -------------

    def fetch_record(self, v: VertexId):
        """Fetch a vertex record, charging the owning shard (accounting)."""
        rec = self.get_record(v)
        if rec is None:
            raise UnknownVertexError(v)
        self.access_stats.record(self.shards.shard_of(v))
        return rec

    def neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        """Neighbors of ``v`` alive at snapshot ``ts``, sorted by id."""
        states = self.neighbor_states_at(v, ts)
        return sorted(dst for dst, (_, post) in states.items() if post)

    def union_neighbors_at(self, v: VertexId, ts: Timestamp) -> List[VertexId]:
        """Neighbors alive at ``ts`` or ``ts - 1`` (the exploration view)."""
        return sorted(self.neighbor_states_at(v, ts))

    def degree_at(self, v: VertexId, ts: Timestamp) -> int:
        return len(self.neighbors_at(v, ts))

    def edges_at(self, ts: Timestamp) -> Iterator[EdgeKey]:
        """All edges alive at snapshot ``ts`` (each yielded once, u < v)."""
        for u, rec in self.iter_records():
            for v, versions in rec.edges.items():
                if u < v and any(iv.alive_at(ts) for iv in versions):
                    yield (u, v)

    def num_edges_at(self, ts: Timestamp) -> int:
        return sum(1 for _ in self.edges_at(ts))

    def as_adjacency(self, ts: Timestamp) -> AdjacencyGraph:
        """Materialize the full snapshot at ``ts`` as a plain graph."""
        g = AdjacencyGraph()
        for v in self.vertices():
            g.add_vertex(v)
            label = self.vertex_label_at(v, ts)
            if label is not None:
                g.set_vertex_label(v, label)
        for u, v in self.edges_at(ts):
            g.add_edge(
                u,
                v,
                label=self.edge_label_at(u, v, ts),
                direction=self.edge_direction_at(u, v, ts),
            )
        return g

    # -- record transfer (fetch boundary, checkpointing) -------------------

    @abc.abstractmethod
    def get_record(self, v: VertexId):
        """The :class:`~repro.store.mvstore.VertexRecord` of ``v``, or None.

        The fetch-boundary read: whole records cross it, everything else
        is computed from the fetched copy.
        """

    @abc.abstractmethod
    def iter_records(self) -> Iterator[Tuple[VertexId, object]]:
        """Every ``(vertex, record)`` pair, for checkpointing and export."""

    @abc.abstractmethod
    def put_record(self, v: VertexId, record) -> None:
        """Install a complete record (checkpoint restore); updates indexes."""

    @abc.abstractmethod
    def set_latest_timestamp(self, ts: Timestamp) -> None:
        """Restore the write clock after :meth:`put_record` replay."""

    # -- maintenance -------------------------------------------------------

    @abc.abstractmethod
    def reclaim(self, horizon: Timestamp) -> ReclaimStats:
        """Drop edge versions deleted at or before ``horizon``.

        Exploration of any window with timestamp > ``horizon`` only reads
        snapshots at ``ts`` and ``ts - 1 >= horizon``, and a version with
        ``deleted_ts <= horizon`` is dead in all such snapshots, so
        removal is safe.  Sub-horizon reads are undefined afterwards.
        """

    def window_completed(self, ts: Timestamp) -> None:
        """Hook fired by the streaming loop once window ``ts`` is done.

        Later windows only read snapshots at or above ``ts``, so stores
        may retire read-cache entries for older snapshots.  Default: no-op.
        """

    def close(self) -> None:
        """Release store-held resources (sockets, embedded servers).

        In-process stores hold none, so the default is a no-op; the
        ``net`` kind overrides this.  Safe to call more than once.
        """

    def tombstone_count(self) -> int:
        """Number of fully dead edge versions currently retained."""
        count = 0
        for u, rec in self.iter_records():
            for v, versions in rec.edges.items():
                if u < v:
                    count += sum(1 for iv in versions if iv.deleted_ts is not None)
        return count

    def memory_items(self) -> int:
        """Total adjacency entries held (a proxy for memory footprint)."""
        return sum(
            len(versions)
            for _, rec in self.iter_records()
            for versions in rec.edges.values()
        )

    @abc.abstractmethod
    def store_stats(self) -> Dict[str, object]:
        """Flat stats dict for run reports: cache counters, access skew."""


def make_store(
    kind: str,
    *,
    num_shards: int = 8,
    graph: Optional[AdjacencyGraph] = None,
    ts: Timestamp = 1,
    fetch_costs=None,
    cache_size: Optional[int] = None,
    addr: Optional[str] = None,
    batch_size: Optional[int] = None,
    telemetry=None,
) -> GraphStore:
    """Construct a store by registry name (see :data:`STORE_NAMES`).

    ``graph`` bulk-loads an initial snapshot at timestamp ``ts``.  The
    ``remote`` kind wraps a flat in-process store behind a
    :class:`~repro.store.remote.RemoteStoreClient` fetch boundary, with
    ``fetch_costs`` as its simulated latency model.  The ``net`` kind
    reads and writes over real TCP: with ``addr`` (``"host:port"``) it
    connects to a running ``repro serve-store`` server, without one it
    spawns an embedded loopback server of its own.  ``batch_size`` (also
    ``net`` only, the CLI's ``mine --store-batch``) sets its records-per-
    ``multi_get`` chunk.  ``telemetry`` (only meaningful for ``net``)
    traces the client's RPCs — and propagates trace context to the
    server on every request.
    """
    from repro.store.mvstore import MultiVersionStore
    from repro.store.sharded import ShardedStore

    if addr is not None and kind != "net":
        raise ValueError(f"addr= only applies to the 'net' store, not {kind!r}")
    if batch_size is not None and kind != "net":
        raise ValueError(
            f"batch_size= only applies to the 'net' store, not {kind!r}"
        )
    kwargs = {"num_shards": num_shards}
    if cache_size is not None:
        kwargs["cache_size"] = cache_size
    if kind == "mv":
        cls = MultiVersionStore
    elif kind == "sharded":
        cls = ShardedStore
    elif kind == "net":
        from repro.net.client import BATCH_SIZE, NetStoreClient
        from repro.store.remote import FetchCosts

        return NetStoreClient(
            addr,
            costs=fetch_costs if fetch_costs is not None else FetchCosts(),
            cache_capacity=cache_size,
            batch_size=batch_size if batch_size is not None else BATCH_SIZE,
            num_shards=num_shards,
            graph=graph,
            ts=ts,
            telemetry=telemetry,
        )
    elif kind == "remote":
        from repro.store.remote import FetchCosts, RemoteStoreClient

        inner = (
            MultiVersionStore.from_adjacency(graph, ts=ts, **kwargs)
            if graph is not None
            else MultiVersionStore(**kwargs)
        )
        return RemoteStoreClient(
            inner, costs=fetch_costs if fetch_costs is not None else FetchCosts()
        )
    else:
        raise ValueError(
            f"unknown store {kind!r}; expected one of {', '.join(STORE_NAMES)}"
        )
    if graph is not None:
        return cls.from_adjacency(graph, ts=ts, **kwargs)
    return cls(**kwargs)
